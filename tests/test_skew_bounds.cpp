// Skew bound theorems on fault-free executions:
//  * Theorem 1.1: L_l <= 4 kappa (2 + log2 D)
//  * Corollary 4.23: Psi^1(l) <= 2 kappa D
//  * Corollary 4.24: global skew <= 6 kappa D
//  * Observation 4.2: L_l <= Psi^s + 4 s kappa
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/potentials.hpp"
#include "runner/experiment.hpp"

namespace gtrix {
namespace {

struct GridSetup {
  std::uint32_t columns;
  std::uint64_t seed;
  DelayModelKind delays;
};

class SkewBoundSweep : public ::testing::TestWithParam<GridSetup> {};

TEST_P(SkewBoundSweep, Theorem11AndGlobalBounds) {
  const GridSetup& setup = GetParam();
  ExperimentConfig config;
  config.columns = setup.columns;
  config.layers = setup.columns;
  config.pulses = 16;
  config.seed = setup.seed;
  config.delay_kind = setup.delays;
  config.delay_split_column = setup.columns / 2;
  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
  EXPECT_LE(result.skew.global_skew, result.global_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SkewBoundSweep,
    ::testing::Values(GridSetup{6, 1, DelayModelKind::kUniformRandom},
                      GridSetup{6, 2, DelayModelKind::kColumnSplit},
                      GridSetup{10, 3, DelayModelKind::kUniformRandom},
                      GridSetup{10, 4, DelayModelKind::kAlternating},
                      GridSetup{14, 5, DelayModelKind::kUniformRandom},
                      GridSetup{14, 6, DelayModelKind::kColumnSplit},
                      GridSetup{18, 7, DelayModelKind::kUniformRandom}));

TEST(SkewBounds, Psi1WithinCorollary423) {
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 10;
  config.pulses = 16;
  config.seed = 21;
  World world(config);
  world.run_to_completion();
  const auto trace = world.trace();
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  const auto profile = psi_profile(trace, config.params, 1, lo, hi);
  const double bound = config.params.psi1_bound(world.grid().base().diameter());
  for (std::uint32_t layer = 1; layer < profile.size(); ++layer) {
    if (std::isnan(profile[layer])) continue;
    EXPECT_LE(profile[layer], bound) << "layer " << layer;
  }
}

TEST(SkewBounds, Observation42LinksPotentialsToSkew) {
  ExperimentConfig config;
  config.columns = 9;
  config.layers = 9;
  config.pulses = 16;
  config.seed = 22;
  World world(config);
  world.run_to_completion();
  const auto trace = world.trace();
  const auto report = world.skew();
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  const double kappa = config.params.kappa();
  for (std::uint32_t s : {0u, 1u, 2u, 3u}) {
    const auto profile = psi_profile(trace, config.params, s, lo, hi);
    for (std::uint32_t layer = 0; layer < profile.size(); ++layer) {
      if (std::isnan(profile[layer])) continue;
      // L_l <= Psi^s(l) + 4 s kappa (Observation 4.2).
      EXPECT_LE(report.intra_by_layer[layer], profile[layer] + 4.0 * s * kappa + 1e-6)
          << "s=" << s << " layer=" << layer;
    }
  }
}

TEST(SkewBounds, SkewDoesNotGrowAcrossLayers) {
  // The gradient property: deep layers are no worse than O(kappa log D),
  // i.e. the last layer's skew stays within the bound (contrast: naive TRIX
  // accumulates; see test_baselines).
  ExperimentConfig config;
  config.columns = 12;
  config.layers = 24;  // deep grid
  config.pulses = 20;
  config.seed = 23;
  config.delay_kind = DelayModelKind::kColumnSplit;
  config.delay_split_column = 6;
  const ExperimentResult result = run_experiment(config);
  EXPECT_LE(result.skew.intra_by_layer.back(), result.thm11_bound);
}

TEST(SkewBounds, TightensWithSmallerUncertainty) {
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 10;
  config.pulses = 16;
  config.seed = 24;
  config.params = Params::with(1000.0, 20.0, 1.0005);
  const ExperimentResult coarse = run_experiment(config);
  config.params = Params::with(1000.0, 2.0, 1.0005);
  const ExperimentResult fine = run_experiment(config);
  EXPECT_LT(fine.skew.max_intra, coarse.skew.max_intra);
}

TEST(SkewBounds, InterLayerSkewBounded) {
  // L_{l,l+1} is also O(kappa log D) (Theorem 1.4's fault-free core).
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 12;
  config.pulses = 18;
  config.seed = 25;
  const ExperimentResult result = run_experiment(config);
  // Bound with the same shape; inter-layer skew includes one hop of delay
  // uncertainty plus correction, well within 2x the intra bound.
  EXPECT_LE(result.skew.max_inter, 2.0 * result.thm11_bound);
}

}  // namespace
}  // namespace gtrix
