#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "scenario/registry.hpp"

namespace gtrix {
namespace {

// --- enum string round trips -------------------------------------------------

TEST(ScenarioEnums, RoundTripAllValues) {
  for (const Algorithm v : {Algorithm::kGradientFull, Algorithm::kGradientSimplified,
                            Algorithm::kTrixNaive}) {
    EXPECT_EQ(algorithm_from_string(to_string(v)), v);
  }
  for (const Layer0Mode v : {Layer0Mode::kIdealJitter, Layer0Mode::kLinePropagation}) {
    EXPECT_EQ(layer0_mode_from_string(to_string(v)), v);
  }
  for (const ClockModelKind v : {ClockModelKind::kRandomStatic, ClockModelKind::kAllFast,
                                 ClockModelKind::kAllSlow, ClockModelKind::kAlternating}) {
    EXPECT_EQ(clock_model_from_string(to_string(v)), v);
  }
  for (const DelayModelKind v :
       {DelayModelKind::kUniformRandom, DelayModelKind::kAllMax, DelayModelKind::kAllMin,
        DelayModelKind::kColumnSplit, DelayModelKind::kAlternating,
        DelayModelKind::kOwnSlowCrossFast}) {
    EXPECT_EQ(delay_model_from_string(to_string(v)), v);
  }
  for (const BaseGraphKind v :
       {BaseGraphKind::kLineReplicated, BaseGraphKind::kCycle, BaseGraphKind::kPath}) {
    EXPECT_EQ(base_graph_from_string(to_string(v)), v);
  }
  for (const FaultKind v : {FaultKind::kCrash, FaultKind::kMuteAfter,
                            FaultKind::kStaticOffset, FaultKind::kSplit, FaultKind::kJitter,
                            FaultKind::kFixedPeriod}) {
    EXPECT_EQ(fault_kind_from_string(to_string(v)), v);
  }
}

TEST(ScenarioEnums, UnknownNameListsValidValues) {
  try {
    (void)algorithm_from_string("nope");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'nope'"), std::string::npos) << what;
    EXPECT_NE(what.find("gradient-full"), std::string::npos) << what;
    EXPECT_NE(what.find("trix-naive"), std::string::npos) << what;
  }
}

// --- ExperimentConfig round trips --------------------------------------------

TEST(ConfigJson, DefaultConfigRoundTrips) {
  const ExperimentConfig config;
  EXPECT_EQ(config_from_json(to_json(config)), config);
}

ExperimentConfig make_exotic_config() {
  ExperimentConfig config;
  config.base_kind = BaseGraphKind::kCycle;
  config.columns = 24;
  config.cycle_reach = 2;
  config.trim = 1;
  config.layers = 12;
  config.params = Params::with(500.0, 5.0, 1.001);
  config.algorithm = Algorithm::kGradientSimplified;
  config.layer0 = Layer0Mode::kLinePropagation;
  config.layer0_jitter = 3.5;
  config.layer0_offset_by_column = {1.0, -2.0, 0.5};
  config.delay_kind = DelayModelKind::kColumnSplit;
  config.delay_split_column = 7;
  config.clock_model = ClockModelKind::kAlternating;
  config.faults = {
      {3, 4, FaultSpec::crash()},
      {5, 6, FaultSpec::static_offset(-42.0)},
      {7, 2, FaultSpec::split(17.0)},
      {2, 9, FaultSpec::jitter(8.0)},
      {1, 3, FaultSpec::fixed_period(1234.5)},
      {0, 5, FaultSpec::mute_after(11)},
  };
  config.pulses = 77;
  config.self_stabilizing = true;
  config.jump_condition = false;
  config.seed = 987654321;
  config.warmup = 6;
  return config;
}

TEST(ConfigJson, ExoticConfigRoundTripsThroughText) {
  const ExperimentConfig config = make_exotic_config();
  // Full cycle including serialization to text: struct -> Json -> string ->
  // Json -> struct.
  const std::string text = to_json(config).dump(2);
  const ExperimentConfig back = config_from_json(Json::parse(text));
  EXPECT_EQ(back, config);
}

TEST(ConfigJson, EveryFaultKindRoundTrips) {
  for (const FaultKind kind : {FaultKind::kCrash, FaultKind::kMuteAfter,
                               FaultKind::kStaticOffset, FaultKind::kSplit,
                               FaultKind::kJitter, FaultKind::kFixedPeriod}) {
    ExperimentConfig config;
    FaultSpec spec;
    spec.kind = kind;
    spec.offset = kind == FaultKind::kStaticOffset ? -3.25 : 0.0;
    spec.alpha = (kind == FaultKind::kSplit || kind == FaultKind::kJitter) ? 9.5 : 0.0;
    spec.period = kind == FaultKind::kFixedPeriod ? 2100.0 : 0.0;
    spec.after = kind == FaultKind::kMuteAfter ? 4 : 0;
    config.faults = {{2, 3, spec}};
    const ExperimentConfig back = config_from_json(Json::parse(to_json(config).dump()));
    EXPECT_EQ(back, config) << to_string(kind);
  }
}

// --- parser error paths ------------------------------------------------------

TEST(ConfigJson, UnknownKeyRejectedWithPath) {
  const Json j = Json::parse(R"({"colums": 8})");
  try {
    (void)config_from_json(j, "$.config");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.config.colums"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigJson, WrongTypeRejectedWithPath) {
  const Json j = Json::parse(R"({"columns": "many"})");
  try {
    (void)config_from_json(j, "$.config");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("$.config.columns"), std::string::npos) << what;
    EXPECT_NE(what.find("int"), std::string::npos) << what;
    EXPECT_NE(what.find("string"), std::string::npos) << what;
  }
}

TEST(ConfigJson, NestedFaultErrorsQualified) {
  const Json j = Json::parse(R"({"faults": [{"kind": "crash"}, {"base": 1}]})");
  try {
    (void)config_from_json(j, "$");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    // The second fault is missing its kind.
    EXPECT_NE(std::string(e.what()).find("$.faults[1]"), std::string::npos) << e.what();
  }
}

TEST(ConfigJson, RangeChecks) {
  EXPECT_THROW((void)config_from_json(Json::parse(R"({"columns": 1})")), JsonError);
  EXPECT_THROW((void)config_from_json(Json::parse(R"({"pulses": 0})")), JsonError);
  EXPECT_THROW((void)config_from_json(Json::parse(R"({"warmup": -1})")), JsonError);
  EXPECT_THROW(
      (void)config_from_json(Json::parse(R"({"random_faults": {"probability": 1.5}})")),
      JsonError);
}

TEST(ConfigJson, GridNodeCountOverflowRejectedWithContext) {
  // 4 columns -> 6 base nodes (line with replicated endpoints); 800M layers
  // pushes layers x base past the uint32 id space. Must fail at config
  // resolution with the shape in the message, not wrap inside a worker.
  try {
    (void)config_from_json(
        Json::parse(R"({"columns": 4, "layers": 800000000, "pulses": 4})"));
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("grid node count"), std::string::npos) << what;
    EXPECT_NE(what.find("800000000"), std::string::npos) << what;
  }
}

// --- scenario documents ------------------------------------------------------

Scenario scenario_from_text(const std::string& text) {
  return Scenario::from_json(Json::parse(text));
}

TEST(Scenario, MinimalDocument) {
  const Scenario s = scenario_from_text(R"({"name": "tiny"})");
  EXPECT_EQ(s.name(), "tiny");
  EXPECT_EQ(s.cell_count(), 1u);
  const auto cells = s.cells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label, "base");
  EXPECT_EQ(cells[0].config, ExperimentConfig{});
  EXPECT_FALSE(cells[0].corrupt.enabled);
}

TEST(Scenario, UnknownTopLevelKeyRejected) {
  try {
    (void)scenario_from_text(R"({"name": "x", "sweeps": {}})");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.sweeps"), std::string::npos) << e.what();
  }
}

TEST(Scenario, MissingNameRejected) {
  EXPECT_THROW((void)scenario_from_text(R"({"config": {}})"), JsonError);
}

TEST(Scenario, SweepCartesianOrderAndLabels) {
  const Scenario s = scenario_from_text(R"({
    "name": "sweep-test",
    "config": {"pulses": 5},
    "sweep": {"columns": [4, 8], "seed": {"from": 10, "count": 3}}
  })");
  EXPECT_EQ(s.cell_count(), 6u);
  const auto cells = s.cells();
  ASSERT_EQ(cells.size(), 6u);
  // Last axis fastest; labels follow axis order.
  EXPECT_EQ(cells[0].label, "columns=4,seed=10");
  EXPECT_EQ(cells[1].label, "columns=4,seed=11");
  EXPECT_EQ(cells[2].label, "columns=4,seed=12");
  EXPECT_EQ(cells[3].label, "columns=8,seed=10");
  EXPECT_EQ(cells[5].label, "columns=8,seed=12");
  EXPECT_EQ(cells[0].config.columns, 4u);
  EXPECT_EQ(cells[0].config.seed, 10u);
  EXPECT_EQ(cells[5].config.columns, 8u);
  EXPECT_EQ(cells[5].config.seed, 12u);
  // Base config fields flow into every cell.
  for (const auto& cell : cells) EXPECT_EQ(cell.config.pulses, 5);
}

TEST(Scenario, ZeroStepAndDuplicateAxisValuesRejected) {
  // step=0 would make several cells share one label (the JSONL row id).
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "dup",
    "sweep": {"seed": {"from": 1, "count": 5, "step": 0}}
  })"),
               JsonError);
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "dup",
    "sweep": {"columns": [8, 16, 8]}
  })"),
               JsonError);
}

TEST(Scenario, NegativeClusteredPositionsRejected) {
  // Negative ints must not silently mean "center"/"third".
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "neg",
    "config": {"clustered_faults": {"count": 1, "column": -3}}
  })"),
               JsonError);
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "neg",
    "config": {"clustered_faults": {"count": 1, "start_layer": -2}}
  })"),
               JsonError);
}

TEST(Scenario, RangeAxisWithStep) {
  const Scenario s = scenario_from_text(R"({
    "name": "step",
    "sweep": {"seed": {"from": 0, "count": 3, "step": 5}}
  })");
  const auto cells = s.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[2].config.seed, 10u);
}

TEST(Scenario, BadAxisValueFailsAtLoadTime) {
  // "columns" axis with a string value must fail in from_json, not cells().
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "bad",
    "sweep": {"columns": ["wide"]}
  })"),
               JsonError);
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "bad",
    "sweep": {"no_such_field": [1]}
  })"),
               JsonError);
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "bad",
    "sweep": {"columns": []}
  })"),
               JsonError);
}

TEST(Scenario, LayersTrackColumns) {
  const Scenario s = scenario_from_text(R"({
    "name": "tied",
    "config": {"layers": "columns"},
    "sweep": {"columns": [4, 9]}
  })");
  const auto cells = s.cells();
  EXPECT_EQ(cells[0].config.layers, 4u);
  EXPECT_EQ(cells[1].config.layers, 9u);
}

TEST(Scenario, DerivedParamsPerCell) {
  const Scenario s = scenario_from_text(R"({
    "name": "derived",
    "config": {"layers": "columns",
               "params": {"derive": {"u": 10.0, "theta": 1.0005, "safety": 1.1}}},
    "sweep": {"columns": [5, 33]}
  })");
  const auto cells = s.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].config.params, Params::derive_for(4, 10.0, 1.0005, 1.1));
  EXPECT_EQ(cells[1].config.params, Params::derive_for(32, 10.0, 1.0005, 1.1));
  // Larger diameter needs a larger d.
  EXPECT_GT(cells[1].config.params.d, cells[0].config.params.d);
}

TEST(Scenario, MixingDeriveWithExplicitParamsRejected) {
  // Both orders are rejected -- the result must not depend on key order.
  for (const char* params : {R"({"u": 5.0, "derive": {"safety": 1.1}})",
                             R"({"derive": {"safety": 1.1}, "u": 5.0})"}) {
    const std::string text =
        std::string(R"({"name": "mix", "config": {"params": )") + params + "}}";
    EXPECT_THROW((void)scenario_from_text(text), JsonError) << params;
  }
  // Sweeping params.u over a derive base is rejected too (use
  // params.derive.u for that).
  EXPECT_THROW((void)scenario_from_text(R"({
    "name": "mix2",
    "config": {"params": {"derive": {}}},
    "sweep": {"params.u": [5.0, 10.0]}
  })"),
               JsonError);
}

TEST(Scenario, GeneratedFaultSpecsAreCanonical) {
  // Generators only keep the field their kind reads: a generated split
  // fault must not carry the generator's offset, and vice versa.
  const Scenario s = scenario_from_text(R"({
    "name": "canon",
    "config": {"columns": 12, "layers": 12,
               "random_faults": {"probability": 0.05,
                                  "kinds": ["static-offset", "split"],
                                  "offset": 150.0, "alpha": 100.0,
                                  "enforce_one_local": false}}
  })");
  const auto cells = s.cells();
  ASSERT_FALSE(cells[0].config.faults.empty());
  for (const PlacedFault& fault : cells[0].config.faults) {
    if (fault.spec.kind == FaultKind::kSplit) {
      EXPECT_EQ(fault.spec, FaultSpec::split(100.0));
    } else {
      EXPECT_EQ(fault.spec, FaultSpec::static_offset(150.0));
    }
  }
}

TEST(Scenario, Layer0PatternAlternates) {
  const Scenario s = scenario_from_text(R"({
    "name": "fig5ish",
    "config": {"columns": 6, "layer0_pattern": {"amplitude": 10.0}}
  })");
  const auto cells = s.cells();
  const auto& offsets = cells[0].config.layer0_offset_by_column;
  ASSERT_EQ(offsets.size(), 6u);
  EXPECT_DOUBLE_EQ(offsets[0], 5.0);
  EXPECT_DOUBLE_EQ(offsets[1], -5.0);
  EXPECT_DOUBLE_EQ(offsets[4], 5.0);
}

TEST(Scenario, ClusteredFaultsResolveCenter) {
  const Scenario s = scenario_from_text(R"({
    "name": "clustered",
    "config": {"columns": 12, "layers": 16,
               "clustered_faults": {"count": 3, "kind": "split", "alpha": 50.0,
                                     "column": "center", "start_layer": 2, "stride": 1}}
  })");
  const auto cells = s.cells();
  const auto& faults = cells[0].config.faults;
  ASSERT_EQ(faults.size(), 3u);
  // "center" resolves to geometric column columns/2 = 6 (node ids differ:
  // the line's replicated endpoint shifts interior ids by one).
  const BaseGraph base = BaseGraph::line_replicated(12);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(base.column(faults[i].base), 6u);
    EXPECT_EQ(faults[i].layer, 2u + i);
    EXPECT_EQ(faults[i].spec.kind, FaultKind::kSplit);
    EXPECT_DOUBLE_EQ(faults[i].spec.alpha, 50.0);
  }
}

TEST(Scenario, RandomFaultsDeterministicPerSeed) {
  const char* text = R"({
    "name": "random",
    "config": {"columns": 12, "layers": 12,
               "random_faults": {"probability": 0.02,
                                  "kinds": ["crash", "static-offset", "split"],
                                  "offset": 150.0, "alpha": 100.0}},
    "sweep": {"seed": {"from": 1, "count": 4}}
  })";
  const auto a = scenario_from_text(text).cells();
  const auto b = scenario_from_text(text).cells();
  ASSERT_EQ(a.size(), b.size());
  bool any_faults = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config, b[i].config);  // same faults both expansions
    any_faults = any_faults || !a[i].config.faults.empty();
  }
  EXPECT_TRUE(any_faults);  // p=0.02 over 4 seeds of 144 nodes: ~11 expected
  // Different seeds draw different placements.
  EXPECT_NE(a[0].config.faults, a[1].config.faults);
}

TEST(Scenario, CorruptPlanParsedAndSweepable) {
  const Scenario s = scenario_from_text(R"({
    "name": "stab",
    "config": {"columns": 6, "layers": 4, "pulses": 30, "self_stabilizing": true},
    "corrupt": {"wave": 8, "fraction": 0.5},
    "sweep": {"corrupt.fraction": [0.25, 1.0]}
  })");
  const auto cells = s.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(cells[0].corrupt.enabled);
  EXPECT_DOUBLE_EQ(cells[0].corrupt.wave, 8.0);
  EXPECT_DOUBLE_EQ(cells[0].corrupt.fraction, 0.25);
  EXPECT_DOUBLE_EQ(cells[1].corrupt.fraction, 1.0);
}

TEST(Scenario, FromFileReportsPathInErrors) {
  const std::string path = testing::TempDir() + "gtrix_truncated_scenario.json";
  {
    std::ofstream out(path);
    out << R"({"name": "broken", )";  // truncated document
  }
  try {
    (void)Scenario::from_file(path);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("gtrix_truncated_scenario.json"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
  EXPECT_THROW((void)Scenario::from_file("/nonexistent/nope.json"), JsonError);
}

TEST(Scenario, FromFileLoadsValidDocument) {
  const std::string path = testing::TempDir() + "gtrix_valid_scenario.json";
  {
    std::ofstream out(path);
    out << R"({"name": "ok", "config": {"columns": 4}, "sweep": {"seed": [1, 2]}})";
  }
  const Scenario s = Scenario::from_file(path);
  EXPECT_EQ(s.name(), "ok");
  EXPECT_EQ(s.cell_count(), 2u);
  std::remove(path.c_str());
}

// --- registry ----------------------------------------------------------------

TEST(Registry, AllBuiltinsExpand) {
  ASSERT_GE(builtin_scenarios().size(), 6u);
  for (const BuiltinInfo& info : builtin_scenarios()) {
    SCOPED_TRACE(std::string(info.name));
    EXPECT_TRUE(is_builtin_scenario(info.name));
    const Scenario scenario = builtin_scenario(info.name);
    EXPECT_EQ(scenario.name(), info.name);
    EXPECT_FALSE(scenario.description().empty());
    const auto cells = scenario.cells();
    // Sweep scenarios must actually expand; only the mega-grid scale
    // scenarios are deliberately single-cell (one cell is already a
    // multi-second run).
    const bool single_cell_scale = std::string(info.name).starts_with("scale-");
    EXPECT_GE(cells.size(), single_cell_scale ? 1u : 2u);
    // Labels are unique within a scenario.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      for (std::size_t j = i + 1; j < cells.size(); ++j) {
        EXPECT_NE(cells[i].label, cells[j].label);
      }
    }
  }
}

TEST(Registry, DocsSurviveTextRoundTrip) {
  for (const BuiltinInfo& info : builtin_scenarios()) {
    SCOPED_TRACE(std::string(info.name));
    const Json doc = builtin_scenario_doc(info.name);
    const Json back = Json::parse(doc.dump(2));
    EXPECT_TRUE(doc == back);
    // The re-parsed document expands to identical configs.
    const auto a = Scenario::from_json(doc).cells();
    const auto b = Scenario::from_json(back).cells();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].config, b[i].config);
      EXPECT_EQ(a[i].label, b[i].label);
    }
  }
}

TEST(Registry, UnknownNameListsBuiltins) {
  EXPECT_FALSE(is_builtin_scenario("no-such"));
  try {
    (void)builtin_scenario("no-such");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("quickstart-grid"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, PaperScenariosCoverHeadlineSetups) {
  for (const char* name : {"table1-comparison", "thm11-logd", "thm12-worstcase-faults",
                           "thm13-random-faults", "fig5-jump-ablation",
                           "thm16-stabilization"}) {
    EXPECT_TRUE(is_builtin_scenario(name)) << name;
  }
  // Spot-check resolved semantics.
  const auto table1 = builtin_scenario("table1-comparison").cells();
  bool saw_trix_crash = false;
  for (const auto& cell : table1) {
    if (cell.config.algorithm == Algorithm::kTrixNaive && !cell.config.faults.empty()) {
      saw_trix_crash = true;
      EXPECT_EQ(cell.config.faults[0].spec.kind, FaultKind::kCrash);
    }
    EXPECT_EQ(cell.config.delay_kind, DelayModelKind::kColumnSplit);
    EXPECT_EQ(cell.config.delay_split_column, cell.config.columns / 2);
  }
  EXPECT_TRUE(saw_trix_crash);

  const auto stab = builtin_scenario("thm16-stabilization").cells();
  for (const auto& cell : stab) {
    EXPECT_TRUE(cell.corrupt.enabled);
    EXPECT_TRUE(cell.config.self_stabilizing);
  }
}

}  // namespace
}  // namespace gtrix
