#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gtrix {
namespace {

Grid make_grid(std::uint32_t columns, std::uint32_t layers) {
  return Grid(BaseGraph::line_replicated(columns), layers);
}

TEST(FaultSpecs, FactoryFunctions) {
  EXPECT_EQ(FaultSpec::crash().kind, FaultKind::kCrash);
  EXPECT_EQ(FaultSpec::static_offset(-5.0).offset, -5.0);
  EXPECT_EQ(FaultSpec::split(3.0).alpha, 3.0);
  EXPECT_EQ(FaultSpec::jitter(2.0).kind, FaultKind::kJitter);
  EXPECT_EQ(FaultSpec::fixed_period(100.0).period, 100.0);
  EXPECT_EQ(FaultSpec::mute_after(7).after, 7);
}

TEST(OneLocality, EmptySetIsLocal) {
  const Grid grid = make_grid(8, 8);
  EXPECT_TRUE(is_one_local(grid, {}));
}

TEST(OneLocality, SingleFaultIsLocal) {
  const Grid grid = make_grid(8, 8);
  const std::vector<PlacedFault> faults = {{2, 3, FaultSpec::crash()}};
  EXPECT_TRUE(is_one_local(grid, faults));
}

TEST(OneLocality, AdjacentSameLayerFaultsViolate) {
  const Grid grid = make_grid(8, 8);
  // Two adjacent base nodes on the same layer share a successor.
  const BaseNodeId a = grid.base().nodes_in_column(2).front();
  const BaseNodeId b = grid.base().nodes_in_column(3).front();
  const std::vector<PlacedFault> faults = {{a, 3, FaultSpec::crash()},
                                           {b, 3, FaultSpec::crash()}};
  EXPECT_FALSE(is_one_local(grid, faults));
  EXPECT_FALSE(one_locality_violations(grid, faults).empty());
}

TEST(OneLocality, DistantFaultsAreLocal) {
  const Grid grid = make_grid(8, 8);
  const BaseNodeId a = grid.base().nodes_in_column(1).front();
  const BaseNodeId b = grid.base().nodes_in_column(6).front();
  const std::vector<PlacedFault> faults = {{a, 3, FaultSpec::crash()},
                                           {b, 3, FaultSpec::crash()}};
  EXPECT_TRUE(is_one_local(grid, faults));
}

TEST(OneLocality, SameColumnAdjacentLayersAreLocal) {
  // (v, l) and (v, l+1): the grid is directed, so (v, l+1)'s successors see
  // only one of them as predecessor; no node has two faulty predecessors.
  const Grid grid = make_grid(8, 8);
  const BaseNodeId v = grid.base().nodes_in_column(3).front();
  const std::vector<PlacedFault> faults = {{v, 3, FaultSpec::crash()},
                                           {v, 4, FaultSpec::crash()}};
  EXPECT_TRUE(is_one_local(grid, faults));
}

TEST(OneLocality, DuplicatePlacementViolates) {
  const Grid grid = make_grid(8, 8);
  const std::vector<PlacedFault> faults = {{2, 3, FaultSpec::crash()},
                                           {2, 3, FaultSpec::static_offset(1.0)}};
  EXPECT_FALSE(is_one_local(grid, faults));
}

TEST(SampleIid, ZeroProbabilityGivesNoFaults) {
  const Grid grid = make_grid(8, 8);
  Rng rng(1);
  PlacementOptions options;
  options.probability = 0.0;
  EXPECT_TRUE(sample_iid_faults(grid, options, FaultSpec::crash(), rng).empty());
}

TEST(SampleIid, RespectsLayer0Exclusion) {
  const Grid grid = make_grid(8, 16);
  Rng rng(2);
  PlacementOptions options;
  options.probability = 0.05;
  options.exclude_layer0 = true;
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
    for (const auto& f : faults) EXPECT_GE(f.layer, 1u);
  }
}

TEST(SampleIid, CanIncludeLayer0) {
  const Grid grid = make_grid(8, 16);
  Rng rng(3);
  PlacementOptions options;
  options.probability = 0.08;
  options.exclude_layer0 = false;
  options.enforce_one_local = false;
  bool saw_layer0 = false;
  for (int trial = 0; trial < 50 && !saw_layer0; ++trial) {
    for (const auto& f : sample_iid_faults(grid, options, FaultSpec::crash(), rng)) {
      saw_layer0 = saw_layer0 || f.layer == 0;
    }
  }
  EXPECT_TRUE(saw_layer0);
}

TEST(SampleIid, EnforcedSamplesAreOneLocal) {
  const Grid grid = make_grid(12, 12);
  Rng rng(4);
  PlacementOptions options;
  options.probability = 0.02;
  options.enforce_one_local = true;
  for (int trial = 0; trial < 20; ++trial) {
    const auto faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
    EXPECT_TRUE(is_one_local(grid, faults));
  }
}

TEST(SampleIid, FrequencyMatchesProbability) {
  const Grid grid = make_grid(16, 16);
  Rng rng(5);
  PlacementOptions options;
  options.probability = 0.01;
  options.enforce_one_local = false;
  options.exclude_layer0 = false;
  std::size_t total = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    total += sample_iid_faults(grid, options, FaultSpec::crash(), rng).size();
  }
  const double expected = 0.01 * grid.node_count() * trials;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.25);
}

TEST(SampleIid, ImpossibleConstraintThrows) {
  const Grid grid = make_grid(6, 6);
  Rng rng(6);
  PlacementOptions options;
  options.probability = 0.9;  // virtually guaranteed to violate 1-locality
  options.enforce_one_local = true;
  options.max_attempts = 3;
  EXPECT_THROW(sample_iid_faults(grid, options, FaultSpec::crash(), rng),
               std::logic_error);
}

TEST(Clustered, PlacesFaultsInColumn) {
  const Grid grid = make_grid(10, 12);
  const auto faults = clustered_faults(grid, 3, 4, 2, 2, FaultSpec::crash());
  ASSERT_EQ(faults.size(), 3u);
  for (const auto& f : faults) {
    EXPECT_EQ(grid.base().column(f.base), 4u);
  }
  EXPECT_EQ(faults[0].layer, 2u);
  EXPECT_EQ(faults[1].layer, 4u);
  EXPECT_EQ(faults[2].layer, 6u);
  EXPECT_TRUE(is_one_local(grid, faults));
}

TEST(Clustered, StrideOneIsStillOneLocal) {
  const Grid grid = make_grid(10, 12);
  const auto faults = clustered_faults(grid, 4, 5, 1, 1, FaultSpec::crash());
  EXPECT_TRUE(is_one_local(grid, faults));
}

TEST(Clustered, OverflowingLayersThrows) {
  const Grid grid = make_grid(10, 5);
  EXPECT_THROW(clustered_faults(grid, 10, 4, 1, 1, FaultSpec::crash()),
               std::logic_error);
}

}  // namespace
}  // namespace gtrix
