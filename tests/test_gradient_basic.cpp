// Core behaviour of the Gradient TRIX node on small fault-free grids:
// iteration alignment (Lemma B.1), propagation bounds (Lemma D.3), and
// bookkeeping counters.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig small_config(std::uint64_t seed,
                              Layer0Mode layer0 = Layer0Mode::kIdealJitter) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 16;
  config.layer0 = layer0;
  config.seed = seed;
  return config;
}

TEST(GradientBasic, EveryCorrectNodePulsesEverySteadyWave) {
  World world(small_config(1));
  world.run_to_completion();
  const auto trace = world.trace();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    const Sigma from = rec.steady_from(g, 3);
    const Sigma last = rec.last_recorded(g);
    ASSERT_NE(from, Recorder::kInvalidSigma) << grid.label(g);
    for (Sigma s = from; s <= last; ++s) {
      EXPECT_TRUE(rec.pulse_time(g, s).has_value())
          << grid.label(g) << " missing wave " << s;
    }
  }
  EXPECT_GT(trace.node_warmup, 0);
}

TEST(GradientBasic, LemmaB1SlotAlignment) {
  // In steady state, every iteration consumes messages carrying the same
  // wave label from every predecessor slot.
  World world(small_config(2));
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  std::uint64_t checked = 0;
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const auto& records = rec.iterations(g);
    for (std::size_t i = 3; i + 1 < records.size(); ++i) {
      const auto& it = records[i];
      for (std::uint8_t s = 0; s < it.slot_count; ++s) {
        ASSERT_TRUE(it.slot_seen[s]) << grid.label(g) << " iteration " << i;
        ASSERT_EQ(it.slot_sigma[s], it.sigma) << grid.label(g) << " iteration " << i;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST(GradientBasic, LemmaD3PropagationBounds) {
  const ExperimentConfig config = small_config(3);
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  const Params& p = config.params;
  std::uint64_t checked = 0;
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const GridNodeId own_pred = grid.predecessors(g)[0];
    const auto& records = rec.iterations(g);
    for (std::size_t i = 3; i + 1 < records.size(); ++i) {
      const auto& it = records[i];
      if (it.late) continue;
      const auto t_prev = rec.pulse_time(own_pred, it.sigma);
      if (!t_prev) continue;
      const double gap = it.pulse_time - *t_prev;
      const double lo = p.d - p.u + (p.lambda - p.d - it.correction) / p.theta;
      const double hi = p.lambda - it.correction;
      EXPECT_GE(gap, lo - 1e-6) << grid.label(g) << " sigma " << it.sigma;
      EXPECT_LE(gap, hi + 1e-6) << grid.label(g) << " sigma " << it.sigma;
      ++checked;
    }
  }
  EXPECT_GT(checked, 500u);
}

TEST(GradientBasic, NoLateBroadcastsAfterWarmup) {
  World world(small_config(4));
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const auto& records = rec.iterations(g);
    for (std::size_t i = 4; i < records.size(); ++i) {
      EXPECT_FALSE(records[i].late)
          << grid.label(g) << " late at iteration " << i;
    }
  }
}

TEST(GradientBasic, SteadyPeriodIsLambda) {
  const ExperimentConfig config = small_config(5);
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const Sigma from = rec.steady_from(g, 4);
    const Sigma last = rec.last_recorded(g) - 1;
    for (Sigma s = from; s + 1 <= last; ++s) {
      const auto t1 = rec.pulse_time(g, s);
      const auto t2 = rec.pulse_time(g, s + 1);
      if (!t1 || !t2) continue;
      // Static conditions: consecutive pulses exactly Lambda apart.
      EXPECT_NEAR(*t2 - *t1, config.params.lambda, 1e-6) << grid.label(g);
    }
  }
}

TEST(GradientBasic, TimeoutBranchUnusedWithoutFaults) {
  World world(small_config(6));
  world.run_to_completion();
  const auto counters = world.counters();
  // Steady-state iterations always have the own-copy message; only the
  // startup cascade may time out.
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const auto& records = rec.iterations(g);
    for (std::size_t i = 4; i < records.size(); ++i) {
      EXPECT_FALSE(records[i].timeout_branch) << grid.label(g);
    }
  }
  EXPECT_GT(counters.iterations, 0u);
}

TEST(GradientBasic, WorksOnCycleBaseGraph) {
  ExperimentConfig config = small_config(7);
  config.base_kind = BaseGraphKind::kCycle;
  config.columns = 10;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
}

TEST(GradientBasic, LineInputAlignsWithIdealBehaviour) {
  // Both layer-0 modes must deliver bounded steady skews.
  const ExperimentResult ideal = run_experiment(small_config(8));
  const ExperimentResult line =
      run_experiment(small_config(8, Layer0Mode::kLinePropagation));
  EXPECT_LE(ideal.skew.max_intra, ideal.thm11_bound);
  EXPECT_LE(line.skew.max_intra, line.thm11_bound);
}

TEST(GradientBasic, DuplicatePulsesAreIgnored) {
  // Inject duplicate pulses from a predecessor mid-run; counters must show
  // drops and skew must stay bounded.
  const ExperimentConfig config = small_config(9);
  World world(config);
  auto& net = world.network();
  const auto& grid = world.grid();
  const GridNodeId target = grid.id(grid.base().nodes_in_column(3).front(), 3);
  const GridNodeId pred = grid.predecessors(target)[1];
  for (int i = 0; i < 5; ++i) {
    net.inject(pred, target, Pulse{2},
               5.0 * config.params.lambda + i * 13.0);
  }
  world.run_to_completion();
  const auto report = world.skew();
  EXPECT_LE(report.max_intra, config.params.thm11_bound(grid.base().diameter()));
}

}  // namespace
}  // namespace gtrix
