// EXTENSION tests ("Bigger Picture" item 3): in-degree-5 grids
// (cycle_wide reach 2) with trimmed aggregation. These validate the
// prototype exploration of the paper's open problem: tolerating more than
// one fault per neighbourhood with in-degree 2f+1.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig wide_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.base_kind = BaseGraphKind::kCycle;
  config.columns = 12;
  config.cycle_reach = 2;
  config.trim = 1;
  config.layers = 12;
  config.pulses = 18;
  config.seed = seed;
  return config;
}

TEST(CycleWide, GraphShape) {
  const BaseGraph g = BaseGraph::cycle_wide(10, 2);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.edge_count(), 20u);
  EXPECT_EQ(g.distance(0, 4), 2u);  // two reach-2 hops
  EXPECT_EQ(g.distance(0, 5), 3u);
  EXPECT_EQ(g.diameter(), 3u);
}

TEST(CycleWide, ReachOneIsPlainCycle) {
  const BaseGraph a = BaseGraph::cycle(8);
  const BaseGraph b = BaseGraph::cycle_wide(8, 1);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.diameter(), b.diameter());
}

TEST(CycleWide, TooSmallRejected) {
  EXPECT_THROW(BaseGraph::cycle_wide(4, 2), std::logic_error);
  EXPECT_THROW(BaseGraph::cycle_wide(5, 0), std::logic_error);
}

TEST(CycleWide, GridInDegreeFive) {
  const Grid grid(BaseGraph::cycle_wide(10, 2), 3);
  for (BaseNodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(grid.predecessors(grid.id(v, 1)).size(), 5u);
  }
}

TEST(ExtensionFLocal, FaultFreeRunsClean) {
  const ExperimentResult result = run_experiment(wide_config(1));
  ASSERT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
}

TEST(ExtensionFLocal, TrimZeroStillWorksOnWideGrid) {
  ExperimentConfig config = wide_config(2);
  config.trim = 0;
  const ExperimentResult result = run_experiment(config);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
}

TEST(ExtensionFLocal, SurvivesTwoFaultyPredecessors) {
  // Two adjacent-column faults on the same layer: every common successor
  // has TWO faulty in-neighbours -- beyond the paper's 1-local model, but
  // within the prototype's budget (own faulty -> timeout; one neighbour
  // trimmed away).
  ExperimentConfig config = wide_config(3);
  config.faults = {{4, 5, FaultSpec::crash()},
                   {5, 5, FaultSpec::static_offset(250.0)}};
  const Grid grid(BaseGraph::cycle_wide(config.columns, 2), config.layers);
  EXPECT_FALSE(is_one_local(grid, config.faults));  // beyond the base model
  EXPECT_TRUE(locality_violations(grid, config.faults, 2).empty());
  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, config.params.thm12_bound(result.diameter, 2));
}

TEST(ExtensionFLocal, SurvivesOppositeSplitPair) {
  // Two neighbours pulling in opposite directions: trimming absorbs one
  // outlier per side.
  ExperimentConfig config = wide_config(4);
  config.faults = {{3, 6, FaultSpec::static_offset(200.0)},
                   {5, 6, FaultSpec::static_offset(-200.0)}};
  const ExperimentResult result = run_experiment(config);
  EXPECT_LE(result.skew.max_intra, config.params.thm12_bound(result.diameter, 2));
}

TEST(ExtensionFLocal, DegreeThreeGridDegradesOnSamePattern) {
  // The same two-adjacent-fault pattern on the paper's degree-3 grid
  // leaves some node with two faulty predecessors and visibly worse skew
  // than the degree-5 trimmed grid -- the point of the extension.
  ExperimentConfig narrow;
  narrow.base_kind = BaseGraphKind::kCycle;
  narrow.columns = 12;
  narrow.cycle_reach = 1;
  narrow.layers = 12;
  narrow.pulses = 18;
  narrow.seed = 5;
  narrow.faults = {{4, 5, FaultSpec::static_offset(400.0)},
                   {5, 5, FaultSpec::static_offset(-400.0)}};
  const ExperimentResult degraded = run_experiment(narrow);

  ExperimentConfig wide = wide_config(5);
  wide.faults = narrow.faults;
  const ExperimentResult robust = run_experiment(wide);

  EXPECT_LT(robust.skew.max_intra, degraded.skew.max_intra);
}

TEST(ExtensionFLocal, ConditionsStillHoldFaultFree) {
  ExperimentConfig config = wide_config(6);
  World world(config);
  world.run_to_completion();
  const ConditionReport report = world.conditions(5);
  EXPECT_GT(report.sc_checked, 0u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ExtensionFLocal, TrimTooLargeRejected) {
  ExperimentConfig config = wide_config(7);
  config.trim = 2;  // 2*trim >= degree(4): invalid
  World world(config);
  EXPECT_THROW(world.run_to_completion(), std::logic_error);
}

}  // namespace
}  // namespace gtrix
