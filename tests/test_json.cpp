#include "support/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace gtrix {
namespace {

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerLiteralStaysInt) {
  const Json j = Json::parse("3");
  EXPECT_TRUE(j.is_int());
  EXPECT_FALSE(j.is_double());
  EXPECT_DOUBLE_EQ(j.as_double(), 3.0);  // as_double accepts ints
}

TEST(JsonParse, DoubleLiteralStaysDouble) {
  EXPECT_TRUE(Json::parse("3.0").is_double());
  EXPECT_TRUE(Json::parse("3e0").is_double());
  EXPECT_THROW((void)Json::parse("3.0").as_int(), JsonError);
}

TEST(JsonParse, IntOverflowFallsBackToDouble) {
  const Json j = Json::parse("99999999999999999999999999");
  EXPECT_TRUE(j.is_double());
}

TEST(JsonParse, NestedStructure) {
  const Json j = Json::parse(R"({"a": [1, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(j.at("a")[0].as_int(), 1);
  EXPECT_TRUE(j.at("a")[1].at("b").as_bool());
  EXPECT_TRUE(j.at("c").at("d").is_null());
}

TEST(JsonParse, ObjectOrderPreserved) {
  const Json j = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const Json::Object& members = j.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("\u00e9")").as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonParse, Whitespace) {
  const Json j = Json::parse("  {\n\t\"a\" : [ 1 , 2 ]\r\n}  ");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(JsonParseError, Truncated) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1, 2"), JsonError);
  EXPECT_THROW((void)Json::parse("\"abc"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":"), JsonError);
}

TEST(JsonParseError, TrailingGarbage) {
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("{} x"), JsonError);
}

TEST(JsonParseError, Malformed) {
  EXPECT_THROW((void)Json::parse("{'a': 1}"), JsonError);    // wrong quotes
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonError);   // missing colon
  EXPECT_THROW((void)Json::parse("[1,,2]"), JsonError);
  EXPECT_THROW((void)Json::parse("01"), JsonError);          // trailing garbage
  EXPECT_THROW((void)Json::parse("truth"), JsonError);
  EXPECT_THROW((void)Json::parse("1."), JsonError);
  EXPECT_THROW((void)Json::parse("\"\\q\""), JsonError);     // bad escape
}

TEST(JsonParseError, DuplicateObjectKey) {
  EXPECT_THROW((void)Json::parse(R"({"a": 1, "a": 2})"), JsonError);
}

TEST(JsonParseError, MessagesCarryLineAndColumn) {
  try {
    (void)Json::parse("{\n  \"a\": xyz\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(JsonParseError, DepthLimit) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)Json::parse(deep), JsonError);
}

TEST(JsonAccessors, TypeErrorsNameBothTypes) {
  try {
    (void)Json(5).as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("string"), std::string::npos) << what;
    EXPECT_NE(what.find("int"), std::string::npos) << what;
  }
}

TEST(JsonAccessors, MissingKeyNamed) {
  const Json j = Json::parse(R"({"a": 1})");
  EXPECT_EQ(j.find("b"), nullptr);
  try {
    (void)j.at("b");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
}

TEST(JsonAccessors, U64RejectsNegative) {
  EXPECT_EQ(Json(7).as_u64(), 7u);
  EXPECT_THROW((void)Json(-1).as_u64(), JsonError);
}

TEST(JsonBuild, SetAndPushBack) {
  Json obj = Json::object();
  obj.set("a", 1);
  obj.set("b", "x");
  obj.set("a", 2);  // overwrite keeps position
  ASSERT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.as_object()[0].first, "a");
  EXPECT_EQ(obj.at("a").as_int(), 2);

  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(true);
  EXPECT_EQ(arr.size(), 2u);
}

TEST(JsonDump, Compact) {
  Json j = Json::object();
  j.set("a", 1);
  j.set("b", Json::array({Json(1), Json(2)}));
  EXPECT_EQ(j.dump(), R"({"a":1,"b":[1,2]})");
}

TEST(JsonDump, Pretty) {
  Json j = Json::object();
  j.set("a", 1);
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonDump, DoubleKeepsTypeMarker) {
  // 2.0 must not serialize as "2" (which would parse back as an int).
  EXPECT_EQ(Json(2.0).dump(), "2.0");
  const Json back = Json::parse(Json(2.0).dump());
  EXPECT_TRUE(back.is_double());
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Json("a\"b\n\x01").dump(), R"("a\"b\n\u0001")");
}

TEST(JsonDump, NonFiniteRejected) {
  EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()).dump(), JsonError);
  EXPECT_THROW((void)Json(std::numeric_limits<double>::quiet_NaN()).dump(), JsonError);
}

TEST(JsonRoundTrip, ValuesSurviveDumpParse) {
  const char* docs[] = {
      R"({"a":1,"b":[1,2.5,"x",null,true],"c":{"d":[{"e":-3}]}})",
      R"([0.1,1e-9,123456789.25,-0.0078125])",
      R"("unicode: \u00e9 \ud83d\ude00")",
  };
  for (const char* doc : docs) {
    const Json first = Json::parse(doc);
    const Json second = Json::parse(first.dump());
    EXPECT_TRUE(first == second) << doc;
    // Serialization is deterministic.
    EXPECT_EQ(first.dump(), second.dump());
    EXPECT_EQ(first.dump(2), second.dump(2));
  }
}

TEST(JsonEquality, NumbersCompareAcrossIntDouble) {
  EXPECT_TRUE(Json(2) == Json(2.0));
  EXPECT_FALSE(Json(2) == Json(2.5));
  EXPECT_FALSE(Json(2) == Json("2"));
}

}  // namespace
}  // namespace gtrix
