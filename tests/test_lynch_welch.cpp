// Lynch-Welch baseline [WL88]: complete graph, f < n/3 Byzantine nodes,
// O(u) skew after convergence.
#include <gtest/gtest.h>

#include "baseline/lynch_welch.hpp"

namespace gtrix {
namespace {

LynchWelchConfig base_config(std::uint64_t seed) {
  LynchWelchConfig config;
  config.seed = seed;
  return config;
}

TEST(LynchWelch, ConvergesFromInitialSpread) {
  const LynchWelchResult result = run_lynch_welch(base_config(1));
  ASSERT_FALSE(result.skew_by_round.empty());
  EXPECT_GT(result.skew_by_round.front(), 100.0);  // starts spread out
  EXPECT_LT(result.final_skew, result.skew_by_round.front() / 4.0);
}

TEST(LynchWelch, ConvergedSkewIsOrderU) {
  const LynchWelchResult result = run_lynch_welch(base_config(2));
  // O(1) in the sense of Table 1: independent of any diameter, a small
  // multiple of u plus drift per round.
  EXPECT_LT(result.max_skew_after_convergence, 6.0 * 10.0);
}

TEST(LynchWelch, ToleratesByzantineMinority) {
  LynchWelchConfig config = base_config(3);
  config.n = 10;
  config.f = 3;
  config.byzantine = 3;
  const LynchWelchResult result = run_lynch_welch(config);
  EXPECT_LT(result.max_skew_after_convergence, 10.0 * 10.0);
}

TEST(LynchWelch, ByzantineBeyondFRejected) {
  LynchWelchConfig config = base_config(4);
  config.f = 2;
  config.byzantine = 3;
  EXPECT_THROW(run_lynch_welch(config), std::logic_error);
}

TEST(LynchWelch, RequiresNOverThreeBound) {
  LynchWelchConfig config = base_config(5);
  config.n = 6;
  config.f = 2;  // 3f = 6 not < 6
  EXPECT_THROW(run_lynch_welch(config), std::logic_error);
}

TEST(LynchWelch, SkewStableAcrossRounds) {
  LynchWelchConfig config = base_config(6);
  config.rounds = 40;
  const LynchWelchResult result = run_lynch_welch(config);
  // After convergence, no divergence in later rounds.
  double late_max = 0.0;
  for (std::size_t r = 20; r < result.skew_by_round.size(); ++r) {
    late_max = std::max(late_max, result.skew_by_round[r]);
  }
  EXPECT_LT(late_max, 100.0);
}

TEST(LynchWelch, Deterministic) {
  const LynchWelchResult a = run_lynch_welch(base_config(7));
  const LynchWelchResult b = run_lynch_welch(base_config(7));
  EXPECT_EQ(a.skew_by_round, b.skew_by_round);
}

TEST(LynchWelch, MoreNodesStillConverge) {
  LynchWelchConfig config = base_config(8);
  config.n = 16;
  config.f = 5;
  config.byzantine = 4;
  const LynchWelchResult result = run_lynch_welch(config);
  EXPECT_LT(result.final_skew, result.skew_by_round.front());
}

}  // namespace
}  // namespace gtrix
