#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "registry/delay.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace gtrix {
namespace {

/// Schedules network sends at given times through the typed event API
/// (payload: a=broadcast source, b=edge, i=stamp).
struct SendAt final : TimerTarget {
  enum Kind : std::uint32_t { kSend = 1, kBroadcast = 2 };
  Network* net = nullptr;

  explicit SendAt(Network& n) : net(&n) {}

  void send(Simulator& sim, SimTime t, EdgeId e, std::int64_t stamp) {
    sim.at(t, this, kSend, EventPayload{.b = e, .i = stamp});
  }
  void broadcast(Simulator& sim, SimTime t, NetNodeId from, std::int64_t stamp) {
    sim.at(t, this, kBroadcast, EventPayload{.a = from, .i = stamp});
  }

  void on_timer(const Event& event) override {
    if (event.kind == kBroadcast) {
      net->broadcast(event.payload.a, Pulse{event.payload.i});
    } else {
      net->send(event.payload.b, Pulse{event.payload.i});
    }
  }
};

struct RecordingSink : PulseSink {
  struct Item {
    NetNodeId from;
    EdgeId edge;
    std::int64_t stamp;
    SimTime at;
  };
  std::vector<Item> received;

  void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) override {
    received.push_back({from, edge, pulse.stamp, now});
  }
};

TEST(Network, DeliversAfterEdgeDelay) {
  Simulator sim;
  Network net(sim);
  RecordingSink sink;
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(&sink);
  const EdgeId e = net.add_edge(a, b, 12.5);
  SendAt sender(net);
  sender.send(sim, 100.0, e, 7);
  sim.run_all();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 112.5);
  EXPECT_EQ(sink.received[0].stamp, 7);
  EXPECT_EQ(sink.received[0].from, a);
  EXPECT_EQ(sink.received[0].edge, e);
}

TEST(Network, BroadcastReachesAllOutEdges) {
  Simulator sim;
  Network net(sim);
  RecordingSink s1, s2, s3;
  const NetNodeId src = net.add_node(nullptr);
  const NetNodeId n1 = net.add_node(&s1);
  const NetNodeId n2 = net.add_node(&s2);
  const NetNodeId n3 = net.add_node(&s3);
  net.add_edge(src, n1, 1.0);
  net.add_edge(src, n2, 2.0);
  net.add_edge(src, n3, 3.0);
  SendAt sender(net);
  sender.broadcast(sim, 0.0, src, 1);
  sim.run_all();
  EXPECT_EQ(s1.received.size(), 1u);
  EXPECT_EQ(s2.received.size(), 1u);
  EXPECT_EQ(s3.received.size(), 1u);
  EXPECT_DOUBLE_EQ(s3.received[0].at, 3.0);
}

TEST(Network, NullSinkDropsSilently) {
  Simulator sim;
  Network net(sim);
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(nullptr);
  const EdgeId e = net.add_edge(a, b, 1.0);
  SendAt sender(net);
  sender.send(sim, 0.0, e, 1);
  sim.run_all();
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(Network, SetSinkRewires) {
  Simulator sim;
  Network net(sim);
  RecordingSink sink;
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(nullptr);
  const EdgeId e = net.add_edge(a, b, 1.0);
  net.set_sink(b, &sink);
  SendAt sender(net);
  sender.send(sim, 0.0, e, 2);
  sim.run_all();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST(Network, FindEdge) {
  Simulator sim;
  Network net(sim);
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(nullptr);
  const NetNodeId c = net.add_node(nullptr);
  const EdgeId ab = net.add_edge(a, b, 1.0);
  EdgeId found = 0;
  EXPECT_TRUE(net.find_edge(a, b, found));
  EXPECT_EQ(found, ab);
  EXPECT_FALSE(net.find_edge(a, c, found));
}

TEST(Network, EdgeAccessors) {
  Simulator sim;
  Network net(sim);
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(nullptr);
  const EdgeId e = net.add_edge(a, b, 9.0);
  EXPECT_EQ(net.edge_from(e), a);
  EXPECT_EQ(net.edge_to(e), b);
  EXPECT_DOUBLE_EQ(net.edge_delay(e), 9.0);
  net.set_edge_delay(e, 4.0);
  EXPECT_DOUBLE_EQ(net.edge_delay(e), 4.0);
  EXPECT_EQ(net.out_edges(a).size(), 1u);
  EXPECT_EQ(net.in_edges(b).size(), 1u);
}

TEST(Network, DelayModulationApplies) {
  Simulator sim;
  Network net(sim);
  RecordingSink sink;
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(&sink);
  const EdgeId e = net.add_edge(a, b, 10.0);
  net.set_delay_modulation([](EdgeId, SimTime t) { return t >= 50.0 ? 5.0 : 0.0; });
  SendAt sender(net);
  sender.send(sim, 0.0, e, 1);
  sender.send(sim, 100.0, e, 2);
  sim.run_all();
  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 10.0);
  EXPECT_DOUBLE_EQ(sink.received[1].at, 115.0);
}

TEST(Network, SendAfterDefersTheSend) {
  Simulator sim;
  Network net(sim);
  RecordingSink sink;
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(&sink);
  const EdgeId e = net.add_edge(a, b, 10.0);
  net.send_after(e, Pulse{4}, 5.0);  // send at t=5, delivery at t=15
  sim.run_all();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 15.0);
  EXPECT_EQ(sink.received[0].stamp, 4);
  EXPECT_THROW(net.send_after(e, Pulse{5}, -1.0), std::logic_error);
}

TEST(Network, InjectDeliversAtAbsoluteTime) {
  Simulator sim;
  Network net(sim);
  RecordingSink sink;
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(&sink);
  net.inject(a, b, Pulse{3}, 42.0);
  sim.run_all();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 42.0);
}

TEST(Network, NonPositiveDelayRejected) {
  Simulator sim;
  Network net(sim);
  const NetNodeId a = net.add_node(nullptr);
  const NetNodeId b = net.add_node(nullptr);
  EXPECT_THROW(net.add_edge(a, b, 0.0), std::logic_error);
  EXPECT_THROW(net.add_edge(a, b, -1.0), std::logic_error);
}

double sample_delay(DelayModelKind kind, std::uint32_t split, std::uint32_t from_col,
                    std::uint32_t to_col, Rng& rng) {
  DelayContext ctx;
  ctx.from_column = from_col;
  ctx.to_column = to_col;
  ctx.d = 100.0;
  ctx.u = 10.0;
  return delay_registry().create(delay_spec_from_legacy(kind, split))->sample(ctx, rng);
}

TEST(DelayModelTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double delay = sample_delay(DelayModelKind::kUniformRandom, 0, 0, 1, rng);
    EXPECT_GE(delay, 90.0);
    EXPECT_LE(delay, 100.0);
  }
}

TEST(DelayModelTest, ExtremesAndSplit) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kAllMax, 0, 3, 4, rng), 100.0);
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kAllMin, 0, 3, 4, rng), 90.0);
  // from column < split 4: fast.
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kColumnSplit, 4, 3, 4, rng), 90.0);
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kColumnSplit, 4, 4, 5, rng), 100.0);
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kAlternating, 0, 0, 2, rng), 100.0);
  EXPECT_DOUBLE_EQ(sample_delay(DelayModelKind::kAlternating, 0, 0, 3, rng), 90.0);
}

}  // namespace
}  // namespace gtrix
