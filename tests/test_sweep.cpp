#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace gtrix {
namespace {

std::vector<ExperimentConfig> small_sweep() {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig config;
    config.columns = 6;
    config.layers = 6;
    config.pulses = 10;
    config.seed = seed;
    if (seed % 2 == 0) {
      config.faults = {{3, 3, FaultSpec::crash()}};
    }
    configs.push_back(config);
  }
  return configs;
}

/// Bitwise comparison of the result fields that must reproduce exactly.
/// Skew numbers are doubles: equality here is intentional, the whole point
/// is that thread count must not perturb a single bit.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.skew.intra_by_layer.size(), b.skew.intra_by_layer.size());
  for (std::size_t l = 0; l < a.skew.intra_by_layer.size(); ++l) {
    EXPECT_EQ(std::memcmp(&a.skew.intra_by_layer[l], &b.skew.intra_by_layer[l],
                          sizeof(double)),
              0);
  }
  EXPECT_EQ(a.skew.max_intra, b.skew.max_intra);
  EXPECT_EQ(a.skew.max_inter, b.skew.max_inter);
  EXPECT_EQ(a.skew.local_skew, b.skew.local_skew);
  EXPECT_EQ(a.skew.global_skew, b.skew.global_skew);
  EXPECT_EQ(a.skew.pairs_checked, b.skew.pairs_checked);
  EXPECT_EQ(a.skew.pairs_skipped, b.skew.pairs_skipped);
  EXPECT_EQ(a.counters.iterations, b.counters.iterations);
  EXPECT_EQ(a.counters.late_broadcasts, b.counters.late_broadcasts);
  EXPECT_EQ(a.counters.timeout_branches, b.counters.timeout_branches);
  EXPECT_EQ(a.counters.events_executed, b.counters.events_executed);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
  EXPECT_EQ(a.diameter, b.diameter);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  parallel_for_index(hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, ZeroItemsIsANoop) {
  parallel_for_index(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForIndex, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for_index(8, 4,
                         [](std::size_t i) {
                           if (i == 5) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

TEST(SweepRunner, ResolvesThreadCount) {
  EXPECT_GE(SweepRunner().thread_count(), 1u);
  EXPECT_EQ(SweepRunner(SweepOptions{3}).thread_count(), 3u);
}

TEST(SweepRunner, ResultsComeBackInInputOrder) {
  const auto configs = small_sweep();
  const auto results = SweepRunner(SweepOptions{4}).run(configs);
  ASSERT_EQ(results.size(), configs.size());
  for (const ExperimentResult& result : results) {
    EXPECT_GT(result.counters.iterations, 0u);
    EXPECT_EQ(result.diameter, 5u);  // columns - 1, independent of order
  }
}

TEST(SweepRunner, SingleAndMultiThreadRunsAreBitIdentical) {
  // The determinism contract: per-config results must not depend on the
  // worker count or on how experiments interleave across threads.
  const auto configs = small_sweep();
  const auto serial = SweepRunner(SweepOptions{1}).run(configs);
  const auto parallel4 = SweepRunner(SweepOptions{4}).run(configs);
  const auto parallel3 = SweepRunner(SweepOptions{3}).run(configs);
  ASSERT_EQ(serial.size(), parallel4.size());
  ASSERT_EQ(serial.size(), parallel3.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel4[i]);
    expect_identical(serial[i], parallel3[i]);
  }
}

TEST(SweepRunner, CustomBodyReceivesIndex) {
  const auto configs = small_sweep();
  std::vector<std::atomic<int>> seen(configs.size());
  for (auto& s : seen) s.store(0);
  const auto results = SweepRunner(SweepOptions{2}).run(
      configs, [&](const ExperimentConfig& config, std::size_t index) {
        seen[index].fetch_add(1);
        return run_experiment(config);
      });
  ASSERT_EQ(results.size(), configs.size());
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
}  // namespace gtrix
