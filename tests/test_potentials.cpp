// Potential functions of Definition 4.1 on synthetic traces with known
// answers, plus consistency properties on real executions.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/potentials.hpp"
#include "runner/experiment.hpp"

namespace gtrix {
namespace {

/// Builds a 1-layer synthetic trace over a replicated line with hand-set
/// pulse times at sigma = 1.
struct SyntheticTrace {
  Grid grid;
  Recorder recorder;
  GridTrace trace;

  SyntheticTrace(std::uint32_t columns, const std::vector<double>& times)
      : grid(BaseGraph::line_replicated(columns), 1) {
    for (GridNodeId g = 0; g < grid.node_count(); ++g) {
      NodeMeta meta;
      meta.layer = 0;
      meta.base = g;
      recorder.register_node(g, meta);
      recorder.record_pulse(g, 1, times.at(g));
    }
    trace.grid = &grid;
    trace.recorder = &recorder;
    for (GridNodeId g = 0; g < grid.node_count(); ++g) trace.node_ids.push_back(g);
    trace.node_warmup = 0;
    trace.node_tail = 0;
  }
};

const Params kParams = Params::with(1000.0, 10.0, 1.0005);

TEST(Potentials, PsiZeroIsMaxSpread) {
  // columns=4 -> nodes: v0, v0', v1, v2, v3, v3' (6 nodes).
  SyntheticTrace synth(4, {0.0, 5.0, 10.0, 20.0, 3.0, 8.0});
  // Psi^0 = max_{v,w} (t_v - t_w) = 20 - 0 = 20.
  EXPECT_DOUBLE_EQ(psi_s(synth.trace, kParams, 0, 1, 0), 20.0);
}

TEST(Potentials, PsiSubtractsDistanceWeight) {
  // Column-3 replicas pulse 100 late; everyone else at 0.
  SyntheticTrace synth(4, {0.0, 0.0, 0.0, 0.0, 100.0, 100.0});
  const double kappa = kParams.kappa();
  // s=0: plain spread.
  EXPECT_DOUBLE_EQ(psi_s(synth.trace, kParams, 0, 1, 0), 100.0);
  // s=1: the adjacent pair (column 2 vs column 3, distance 1) dominates:
  // 100 - 4 kappa beats the far pair's 100 - 12 kappa.
  EXPECT_NEAR(psi_s(synth.trace, kParams, 0, 1, 1), 100.0 - 4.0 * kappa, 1e-9);
}

TEST(Potentials, XiUsesSmallerWeight) {
  SyntheticTrace synth(4, {0.0, 0.0, 0.0, 0.0, 50.0, 50.0});
  const double kappa = kParams.kappa();
  // xi weight (4s-2)k: for s=1 it's 2k vs psi's 4k.
  const double psi = psi_s(synth.trace, kParams, 0, 1, 1);
  const double xi = xi_s(synth.trace, kParams, 0, 1, 1);
  EXPECT_NEAR(xi - psi, 2.0 * kappa, 1e-9);
}

TEST(Potentials, SymmetricTimesGiveZeroPsi0) {
  SyntheticTrace synth(4, {7.0, 7.0, 7.0, 7.0, 7.0, 7.0});
  EXPECT_DOUBLE_EQ(psi_s(synth.trace, kParams, 0, 1, 0), 0.0);
}

TEST(Potentials, MissingLayerIsNaN) {
  SyntheticTrace synth(4, {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_TRUE(std::isnan(psi_s(synth.trace, kParams, 0, 99, 0)));
}

TEST(Potentials, PsiDecreasesInS) {
  // Monotone: larger s subtracts more.
  SyntheticTrace synth(5, {0.0, 2.0, 13.0, 29.0, 31.0, 47.0, 45.0});
  double last = std::numeric_limits<double>::infinity();
  for (std::uint32_t s = 0; s < 5; ++s) {
    const double p = psi_s(synth.trace, kParams, 0, 1, s);
    EXPECT_LE(p, last);
    last = p;
  }
}

TEST(Potentials, ProfileOnRealRunIsBoundedAndShrinks) {
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 10;
  config.pulses = 16;
  config.seed = 55;
  World world(config);
  world.run_to_completion();
  const auto trace = world.trace();
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  const auto p0 = psi_profile(trace, config.params, 0, lo, hi);
  const auto p2 = psi_profile(trace, config.params, 2, lo, hi);
  for (std::uint32_t layer = 0; layer < 10; ++layer) {
    if (std::isnan(p0[layer]) || std::isnan(p2[layer])) continue;
    EXPECT_LE(p2[layer], p0[layer] + 1e-9);
    EXPECT_LE(p0[layer], config.params.global_skew_bound(9));
  }
}

TEST(Potentials, FaultyNodesExcluded) {
  SyntheticTrace synth(4, {0.0, 0.0, 0.0, 0.0, 1e9, 0.0});
  // Mark the outlier node faulty: it must no longer dominate the potential.
  NodeMeta meta = synth.recorder.meta(4);
  meta.faulty = true;
  synth.recorder.register_node(4, meta);
  EXPECT_LT(psi_s(synth.trace, kParams, 0, 1, 0), 1.0);
}

}  // namespace
}  // namespace gtrix
