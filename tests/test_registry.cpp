// Tests for the pluggable component registries: schema validation,
// duplicate/unknown-kind rejection, legacy-enum interchangeability, the
// torus topology and drift-walk clock model shipped through the API, and
// the capability checks that turned silent fault/corruption no-ops into
// hard config errors.
#include "registry/registry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "baseline/lw_grid.hpp"
#include "registry/algorithm.hpp"
#include "registry/clock_model.hpp"
#include "registry/delay.hpp"
#include "registry/describe.hpp"
#include "registry/topology.hpp"
#include "runner/campaign.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace gtrix {
namespace {

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const JsonError& e) {
    return e.what();
  }
  return "";
}

// --- registry mechanics ------------------------------------------------------

TEST(Registry, DuplicateRegistrationIsRejected) {
  ComponentRegistry<TopologyProvider> reg("base graph");
  reg.add("dup", "first", {}, [](const ComponentSpec&) {
    return std::shared_ptr<const TopologyProvider>();
  });
  try {
    reg.add("dup", "second", {}, [](const ComponentSpec&) {
      return std::shared_ptr<const TopologyProvider>();
    });
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate base graph registration 'dup'"),
              std::string::npos)
        << e.what();
  }
}

TEST(Registry, BadSchemaDefaultIsRejectedAtRegistration) {
  ComponentRegistry<TopologyProvider> reg("base graph");
  EXPECT_THROW(reg.add("bad", "default type mismatch",
                       {{"n", ParamType::kInt, Json("three"), ""}},
                       [](const ComponentSpec&) {
                         return std::shared_ptr<const TopologyProvider>();
                       }),
               JsonError);
}

TEST(Registry, UnknownKindListsValidKinds) {
  const std::string what =
      error_of([] { topology_registry().canonicalize(ComponentSpec::of("moebius")); });
  EXPECT_NE(what.find("unknown base graph 'moebius'"), std::string::npos) << what;
  EXPECT_NE(what.find("line-replicated"), std::string::npos) << what;
  EXPECT_NE(what.find("torus"), std::string::npos) << what;
}

TEST(Registry, UnknownParameterListsSchema) {
  ComponentSpec spec = ComponentSpec::of("torus");
  spec.params.set("cols", 4);
  const std::string what = error_of([&] { topology_registry().canonicalize(spec); });
  EXPECT_NE(what.find("unknown parameter 'cols' for base graph 'torus'"), std::string::npos)
      << what;
  EXPECT_NE(what.find("rows"), std::string::npos) << what;
}

TEST(Registry, ParameterTypeMismatchNamesTypes) {
  ComponentSpec spec = ComponentSpec::of("torus");
  spec.params.set("rows", "four");
  const std::string what = error_of([&] { topology_registry().canonicalize(spec); });
  EXPECT_NE(what.find("parameter 'rows' of base graph 'torus'"), std::string::npos) << what;
  EXPECT_NE(what.find("expected int, got string"), std::string::npos) << what;
}

TEST(Registry, CanonicalizeFillsDefaultsInSchemaOrder) {
  const ComponentSpec canonical =
      clock_model_registry().canonicalize(ComponentSpec::of("drift-walk"));
  EXPECT_EQ(canonical.params.at("interval_waves").as_double(), 1.0);
  EXPECT_EQ(canonical.params.at("step").as_double(), 0.5);
  // Spelled-out defaults canonicalize to the same spec.
  ComponentSpec spelled = ComponentSpec::of("drift-walk");
  spelled.params.set("step", 0.5);
  EXPECT_EQ(clock_model_registry().canonicalize(spelled), canonical);
}

TEST(Registry, FactoryValidatesParameterRanges) {
  ComponentSpec spec = ComponentSpec::of("torus");
  spec.params.set("rows", 2);
  EXPECT_THROW((void)topology_registry().create(spec), JsonError);
  ComponentSpec walk = ComponentSpec::of("drift-walk");
  walk.params.set("step", 1.5);
  EXPECT_THROW((void)clock_model_registry().create(walk), JsonError);
}

TEST(Registry, DescribeEnumeratesAllDimensions) {
  bool saw_torus = false, saw_drift = false, saw_lw = false, saw_split = false;
  for (const ComponentDesc& desc : all_component_descs()) {
    if (desc.kind == "torus") {
      saw_torus = true;
      EXPECT_EQ(desc.config_key, "base_graph");
      ASSERT_EQ(desc.params.size(), 1u);
      EXPECT_EQ(desc.params[0].name, "rows");
    }
    if (desc.kind == "drift-walk") saw_drift = true;
    if (desc.kind == "lynch-welch") saw_lw = true;
    if (desc.kind == "column-split") saw_split = true;
  }
  EXPECT_TRUE(saw_torus && saw_drift && saw_lw && saw_split);
}

// --- torus topology ----------------------------------------------------------

TEST(Torus, StructureIsAWraparoundGrid) {
  const BaseGraph g = BaseGraph::torus(3, 6);
  EXPECT_EQ(g.node_count(), 18u);
  EXPECT_EQ(g.column_count(), 6u);
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.edge_count(), 36u);  // 2 edges per node
  EXPECT_EQ(g.diameter(), 4u);     // floor(3/2) + floor(6/2)
  for (std::uint32_t c = 0; c < 6; ++c) {
    EXPECT_EQ(g.nodes_in_column(c).size(), 3u);
  }
  // Wraparound adjacency in both dimensions.
  EXPECT_TRUE(g.has_edge(0, 5));       // (0,0) -- (0,5)
  EXPECT_TRUE(g.has_edge(0, 12));      // (0,0) -- (2,0)
  EXPECT_FALSE(g.has_edge(0, 7));      // (0,0) -- (1,1): diagonal
}

TEST(Torus, RejectsDegenerateDimensions) {
  EXPECT_THROW((void)BaseGraph::torus(2, 6), std::logic_error);
  EXPECT_THROW((void)BaseGraph::torus(3, 2), std::logic_error);
}

TEST(Torus, GradientExperimentRunsWithinBounds) {
  ExperimentConfig config;
  config.topology_spec = ComponentSpec::of("torus");
  config.topology_spec.params.set("rows", 4);
  config.columns = 5;
  config.layers = 6;
  config.pulses = 8;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.diameter, 4u);
  EXPECT_GT(result.counters.iterations, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
}

// --- drift-walk clock model --------------------------------------------------

TEST(DriftWalk, RatesStayInsideTheDriftBand) {
  ComponentSpec spec = ComponentSpec::of("drift-walk");
  spec.params.set("interval_waves", 0.5);
  const auto provider = clock_model_registry().create(spec);
  ClockContext ctx;
  ctx.params = Params::with(1000.0, 10.0, 1.0005);
  ctx.horizon = 40.0 * ctx.params.lambda;
  Rng rng(7);
  const HardwareClock clock = provider->make(ctx, rng);
  EXPECT_GE(clock.min_rate(), 1.0);
  EXPECT_LE(clock.max_rate(), ctx.params.theta);
  // The walk actually moves: over 80 segments the rate is not constant.
  EXPECT_GT(clock.max_rate() - clock.min_rate(), 0.0);
  // Clock stays invertible along the schedule.
  for (const double t : {0.0, 999.0, 12345.6, 71111.1}) {
    EXPECT_NEAR(clock.to_real(clock.to_local(t)), t, 1e-6);
  }
}

TEST(DriftWalk, DeterministicForSameSeed) {
  const auto provider = clock_model_registry().create(ComponentSpec::of("drift-walk"));
  ClockContext ctx;
  ctx.params = Params::with(1000.0, 10.0, 1.0005);
  ctx.horizon = 20.0 * ctx.params.lambda;
  Rng a(42), b(42);
  const HardwareClock ca = provider->make(ctx, a);
  const HardwareClock cb = provider->make(ctx, b);
  for (const double t : {0.0, 5000.0, 17500.0, 39999.0}) {
    EXPECT_EQ(ca.to_local(t), cb.to_local(t));
  }
}

// --- legacy enum adapters ----------------------------------------------------

TEST(Adapters, EnumAndSpecSpellingsCompareEqual) {
  ExperimentConfig via_enum;
  via_enum.base_kind = BaseGraphKind::kCycle;
  via_enum.cycle_reach = 2;
  via_enum.clock_model = ClockModelKind::kAllFast;
  via_enum.delay_kind = DelayModelKind::kColumnSplit;
  via_enum.delay_split_column = 4;
  via_enum.algorithm = Algorithm::kTrixNaive;

  ExperimentConfig via_spec;
  via_spec.topology_spec = ComponentSpec::of("cycle");
  via_spec.topology_spec.params.set("reach", 2);
  via_spec.clock_spec = ComponentSpec::of("all-fast");
  via_spec.delay_spec = ComponentSpec::of("column-split");
  via_spec.delay_spec.params.set("split_column", 4);
  via_spec.algorithm_spec = ComponentSpec::of("trix-naive");

  EXPECT_EQ(via_enum, via_spec);
  EXPECT_EQ(resolve_components(via_enum), resolve_components(via_spec));
}

TEST(Adapters, LegacyEnumConfigsProduceIdenticalRunsAsSpecConfigs) {
  ExperimentConfig via_enum;
  via_enum.base_kind = BaseGraphKind::kCycle;
  via_enum.cycle_reach = 2;
  via_enum.columns = 6;
  via_enum.layers = 5;
  via_enum.pulses = 6;
  ExperimentConfig via_spec = via_enum;
  via_spec.base_kind = BaseGraphKind::kLineReplicated;  // ignored: spec wins
  via_spec.topology_spec = ComponentSpec::of("cycle");
  via_spec.topology_spec.params.set("reach", 2);
  const ExperimentResult a = run_experiment(via_enum);
  const ExperimentResult b = run_experiment(via_spec);
  EXPECT_EQ(a.skew.local_skew, b.skew.local_skew);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
}

// --- JSON round trips of the new components ----------------------------------

TEST(ComponentJson, TorusAndDriftWalkRoundTripThroughText) {
  ExperimentConfig config;
  config.topology_spec = ComponentSpec::of("torus");
  config.topology_spec.params.set("rows", 5);
  config.clock_spec = ComponentSpec::of("drift-walk");
  config.clock_spec.params.set("step", 0.25);
  config.algorithm_spec = ComponentSpec::of("lynch-welch");
  config.columns = 7;
  config.layers = 4;
  const std::string text = to_json(config).dump(2);
  const ExperimentConfig back = config_from_json(Json::parse(text));
  EXPECT_EQ(back, config);
  // Non-default params survive as object syntax, defaults collapse to kind
  // strings elsewhere.
  EXPECT_NE(text.find("\"kind\": \"torus\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"rows\": 5"), std::string::npos) << text;
  EXPECT_NE(text.find("\"step\": 0.25"), std::string::npos) << text;
}

TEST(ComponentJson, LegacyParamKeysAreKeyOrderIndependent) {
  // 'cycle_reach' before or after a bare-string "cycle" must mean the same
  // thing (the string spelling never touches the parameter fields).
  const ExperimentConfig before = config_from_json(
      Json::parse(R"({"cycle_reach": 2, "base_graph": "cycle", "columns": 8})"));
  const ExperimentConfig after = config_from_json(
      Json::parse(R"({"base_graph": "cycle", "cycle_reach": 2, "columns": 8})"));
  EXPECT_EQ(before, after);
  EXPECT_EQ(resolve_components(before).topology.params.at("reach").as_int(), 2);
  // Same for delay_split_column around a bare-string column-split.
  const ExperimentConfig split = config_from_json(Json::parse(
      R"({"delay_split_column": 5, "delay_model": "column-split", "columns": 8})"));
  EXPECT_EQ(resolve_components(split).delay.params.at("split_column").as_int(), 5);
}

TEST(ComponentJson, LegacyParamKeyReachesAnObjectFormSpec) {
  // A swept 'cycle_reach' must land in the object-form cycle spec instead
  // of being silently ignored (which would emit identical cells under
  // distinct sweep labels).
  Json doc = Json::parse(R"({
    "name": "reach-sweep",
    "config": {"base_graph": {"kind": "cycle"}, "columns": 9},
    "sweep": {"cycle_reach": [1, 2]}
  })");
  const auto cells = Scenario::from_json(doc).cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(resolve_components(cells[0].config).topology.params.at("reach").as_int(), 1);
  EXPECT_EQ(resolve_components(cells[1].config).topology.params.at("reach").as_int(), 2);

  // On a kind that cannot take it, the legacy key is a config error --
  // whether the kind was selected via spec or via the legacy enum path.
  const std::string what = error_of([] {
    (void)config_from_json(
        Json::parse(R"({"base_graph": {"kind": "torus"}, "cycle_reach": 2, "columns": 6})"));
  });
  EXPECT_NE(what.find("'cycle_reach' has no effect"), std::string::npos) << what;

  const std::string on_default = error_of([] {
    (void)config_from_json(Json::parse(R"({"cycle_reach": 2, "columns": 6})"));
  });
  EXPECT_NE(on_default.find("'cycle_reach' has no effect on base graph 'line-replicated'"),
            std::string::npos)
      << on_default;

  const std::string split_default = error_of([] {
    (void)config_from_json(Json::parse(R"({"delay_split_column": 3, "columns": 6})"));
  });
  EXPECT_NE(split_default.find("'delay_split_column' has no effect"), std::string::npos)
      << split_default;
}

TEST(ComponentJson, LegacyKeyConflictingWithExplicitSpecParamIsAnError) {
  // Static 'cycle_reach' vs a swept 'base_graph.reach' axis: erroring beats
  // the legacy constant silently clobbering every swept cell.
  Json doc = Json::parse(R"({
    "name": "conflict",
    "config": {"base_graph": {"kind": "cycle"}, "cycle_reach": 2, "columns": 9},
    "sweep": {"base_graph.reach": [1, 2, 3]}
  })");
  const Scenario scenario = Scenario::from_json(doc);
  const std::string what = error_of([&] { (void)scenario.cells(); });
  EXPECT_NE(what.find("'cycle_reach' conflicts"), std::string::npos) << what;

  const std::string object = error_of([] {
    (void)config_from_json(Json::parse(
        R"({"base_graph": {"kind": "cycle", "reach": 3}, "cycle_reach": 2, "columns": 9})"));
  });
  EXPECT_NE(object.find("'cycle_reach' conflicts"), std::string::npos) << object;
}

TEST(ComponentJson, WholeComponentKeyCannotClobberDottedParams) {
  // A whole-component axis declared AFTER a dotted parameter axis would
  // silently reset the swept parameter each cell; reject it.
  Json doc = Json::parse(R"({
    "name": "clobber",
    "config": {"base_graph": "cycle", "columns": 9},
    "sweep": {
      "base_graph.reach": [1, 2],
      "base_graph": [{"kind": "cycle"}]
    }
  })");
  const Scenario bad = Scenario::from_json(doc);
  const std::string what = error_of([&] { (void)bad.cells(); });
  EXPECT_NE(what.find("would overwrite parameters"), std::string::npos) << what;

  // The other order is fine: whole component first, parameters refined after.
  Json ok = Json::parse(R"({
    "name": "refine",
    "config": {"base_graph": "cycle", "columns": 9},
    "sweep": {
      "base_graph": [{"kind": "cycle"}],
      "base_graph.reach": [1, 2]
    }
  })");
  const auto cells = Scenario::from_json(ok).cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(resolve_components(cells[0].config).topology.params.at("reach").as_int(), 1);
  EXPECT_EQ(resolve_components(cells[1].config).topology.params.at("reach").as_int(), 2);
}

TEST(ComponentJson, BareKindStringAndObjectFormParseAlike) {
  const ExperimentConfig a =
      config_from_json(Json::parse(R"({"base_graph": "torus", "columns": 6})"));
  const ExperimentConfig b =
      config_from_json(Json::parse(R"({"base_graph": {"kind": "torus", "rows": 3},
                                       "columns": 6})"));
  EXPECT_EQ(a, b);
}

TEST(ComponentJson, UnknownKindAndParamErrorsArePathQualified) {
  const std::string unknown = error_of([] {
    (void)config_from_json(Json::parse(R"({"base_graph": "moebius"})"));
  });
  EXPECT_NE(unknown.find("$.base_graph"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("unknown base graph 'moebius'"), std::string::npos) << unknown;

  const std::string badparam = error_of([] {
    (void)config_from_json(
        Json::parse(R"({"clock_model": {"kind": "drift-walk", "stp": 0.1}})"));
  });
  EXPECT_NE(badparam.find("$.clock_model"), std::string::npos) << badparam;
  EXPECT_NE(badparam.find("unknown parameter 'stp'"), std::string::npos) << badparam;
}

// --- capability checks (previously silent no-ops) ----------------------------

TEST(Caps, SendFaultOnNaiveTrixIsAConfigError) {
  const std::string what = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "algorithm": "trix-naive",
      "faults": [{"base": 2, "layer": 3, "kind": "split", "alpha": 50.0}]
    })"));
  });
  EXPECT_NE(what.find("$"), std::string::npos) << what;
  EXPECT_NE(what.find("'trix-naive'"), std::string::npos) << what;
  EXPECT_NE(what.find("split"), std::string::npos) << what;
  EXPECT_NE(what.find("crash, fixed-period"), std::string::npos) << what;
}

TEST(Caps, CrashFaultOnNaiveTrixRemainsAllowed) {
  const ExperimentConfig config = config_from_json(Json::parse(R"({
    "algorithm": "trix-naive",
    "faults": [{"base": 2, "layer": 3, "kind": "crash"}]
  })"));
  EXPECT_EQ(config.faults.size(), 1u);
}

TEST(Caps, AnyFaultOnLynchWelchIsAConfigError) {
  const std::string what = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "algorithm": "lynch-welch",
      "faults": [{"base": 2, "layer": 3, "kind": "crash"}]
    })"));
  });
  EXPECT_NE(what.find("'lynch-welch'"), std::string::npos) << what;
}

TEST(Caps, SilentLayer0FaultFollowsTheSameRule) {
  // A layer-0 crash starves layer-1 successors just like any other silent
  // node: rejected for lynch-welch, fine for algorithms that tolerate
  // silent predecessors.
  const std::string what = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "algorithm": "lynch-welch",
      "faults": [{"base": 1, "layer": 0, "kind": "crash"}]
    })"));
  });
  EXPECT_NE(what.find("'lynch-welch'"), std::string::npos) << what;

  const ExperimentConfig ok = config_from_json(Json::parse(R"({
    "algorithm": "trix-naive",
    "faults": [{"base": 1, "layer": 0, "kind": "crash"}]
  })"));
  EXPECT_EQ(ok.faults.size(), 1u);
}

TEST(Caps, UnrealizableLayer0FaultKindsAreConfigErrors) {
  // Ideal mode can realize crash and static-offset on layer 0; anything
  // else would be a silent no-op and is rejected.
  const std::string what = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "faults": [{"base": 1, "layer": 0, "kind": "split", "alpha": 40.0}]
    })"));
  });
  EXPECT_NE(what.find("layer-0 faults"), std::string::npos) << what;
  EXPECT_NE(what.find("'crash' and 'static-offset'"), std::string::npos) << what;

  const ExperimentConfig ok = config_from_json(Json::parse(R"({
    "faults": [{"base": 1, "layer": 0, "kind": "static-offset", "offset": 25.0}]
  })"));
  EXPECT_EQ(ok.faults.size(), 1u);

  // Line propagation supports crash only.
  const std::string line = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "layer0_mode": "line-propagation",
      "faults": [{"base": 1, "layer": 0, "kind": "static-offset", "offset": 25.0}]
    })"));
  });
  EXPECT_NE(line.find("'crash' only"), std::string::npos) << line;
}

TEST(RegistryScenario, TopologyShapeMismatchFailsWithPathContext) {
  // cycle_wide needs columns > 2*reach; the mismatch must surface at
  // config resolution with context, not as a raw logic_error in a worker.
  const std::string what = error_of([] {
    (void)config_from_json(Json::parse(R"({
      "base_graph": {"kind": "cycle", "reach": 8},
      "columns": 12
    })"));
  });
  EXPECT_NE(what.find("invalid topology"), std::string::npos) << what;
  EXPECT_NE(what.find("2*reach"), std::string::npos) << what;
}

TEST(Caps, CorruptPlanOnNaiveTrixIsAConfigError) {
  Json doc = Json::parse(R"({
    "name": "bad-corrupt",
    "config": {"algorithm": "trix-naive", "columns": 6, "layers": 4, "pulses": 30},
    "corrupt": {"wave": 5, "fraction": 0.5}
  })");
  const Scenario scenario = Scenario::from_json(doc);
  const std::string what = error_of([&] { (void)scenario.cells(); });
  EXPECT_NE(what.find("corrupt"), std::string::npos) << what;
  EXPECT_NE(what.find("'trix-naive'"), std::string::npos) << what;
}

TEST(Caps, DirectWorldCorruptionIsAHardError) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kTrixNaive;
  config.columns = 4;
  config.layers = 3;
  config.pulses = 4;
  World world(config);
  Rng rng(1);
  EXPECT_THROW(world.corrupt_fraction(0.5, rng), std::logic_error);
}

// --- lynch-welch on the grid -------------------------------------------------

TEST(LynchWelchGrid, PredecessorRunningTwoWavesAheadDoesNotStallTheNode) {
  // Regression: the post-fire drain must keep a predecessor's SECOND queued
  // pulse for the wave after next instead of dropping it (which would leave
  // that wave permanently incomplete and silence the node forever).
  Simulator sim;
  Network net(sim);
  const NetNodeId a = net.add_node();
  const NetNodeId b = net.add_node();
  const NetNodeId lw = net.add_node();
  LynchWelchGridNode node(sim, net, lw, HardwareClock(1.0, 0.0), {a, b},
                          Params::with(1000.0, 10.0, 1.0005), 0, nullptr);
  net.set_sink(lw, &node);
  // Wave 0 completes; A then runs two waves ahead before the node fires.
  net.inject(a, lw, Pulse{0}, 1.0);
  net.inject(b, lw, Pulse{0}, 2.0);
  net.inject(a, lw, Pulse{1}, 3.0);
  net.inject(a, lw, Pulse{2}, 4.0);
  net.inject(b, lw, Pulse{1}, 1500.0);
  net.inject(b, lw, Pulse{2}, 2600.0);
  sim.run_all();
  EXPECT_EQ(node.pulses_forwarded(), 3u);
}

TEST(LynchWelchGrid, RunsFaultFreeAndForwardsEveryWave) {
  ExperimentConfig config;
  config.algorithm_spec = ComponentSpec::of("lynch-welch");
  config.columns = 6;
  config.layers = 5;
  config.pulses = 8;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.counters.messages_sent, 0u);
  EXPECT_GT(result.skew.local_skew, 0.0);
  EXPECT_LE(result.skew.local_skew, result.global_bound);
}

// --- scenario + campaign integration -----------------------------------------

TEST(RegistryScenario, TorusSmokeExpandsAndSweepsComponentParams) {
  const Scenario scenario = builtin_scenario("torus-smoke");
  const auto cells = scenario.cells();
  ASSERT_EQ(cells.size(), 6u);
  const ResolvedComponents first = resolve_components(cells.front().config);
  EXPECT_EQ(first.topology.kind, "torus");
  EXPECT_EQ(first.clock.kind, "drift-walk");
  EXPECT_EQ(first.clock.params.at("interval_waves").as_double(), 1.0);
  const ResolvedComponents last = resolve_components(cells.back().config);
  EXPECT_EQ(last.clock.params.at("interval_waves").as_double(), 4.0);
}

TEST(RegistryScenario, DottedComponentAxisValidatesAtLoadTime) {
  Json doc = Json::parse(R"({
    "name": "bad-axis",
    "config": {"base_graph": "torus", "columns": 6},
    "sweep": {"base_graph.rowz": [3, 4]}
  })");
  const std::string what = error_of([&] { (void)Scenario::from_json(doc); });
  EXPECT_NE(what.find("unknown parameter 'rowz'"), std::string::npos) << what;
}

TEST(RegistryScenario, TorusSmokeCampaignIsThreadCountInvariant) {
  const Scenario scenario = builtin_scenario("torus-smoke");
  const std::string one = campaign_jsonl(run_campaign(scenario, {.threads = 1, .recording_override = {}}));
  const std::string four = campaign_jsonl(run_campaign(scenario, {.threads = 4, .recording_override = {}}));
  EXPECT_EQ(one, four);
  // Every emitted config round-trips through the component syntax.
  std::size_t start = 0, lines = 0;
  while (start < one.size()) {
    const std::size_t end = one.find('\n', start);
    const Json line = Json::parse(one.substr(start, end - start));
    const ExperimentConfig config = config_from_json(line.at("config"));
    EXPECT_EQ(resolve_components(config).topology.kind, "torus");
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 6u);
}

// --- extension through the public API (zero World edits) ---------------------

/// A complete-graph topology registered by this test: proves a new topology
/// flows from registration through config, World wiring and a full run
/// without touching World, spec.cpp or any enum.
class CompleteGraphTopology final : public TopologyProvider {
 public:
  BaseGraph build(const TopologyContext& ctx) const override {
    // Reuse cycle_wide with maximal reach: K_n for odd n.
    return BaseGraph::cycle_wide(ctx.columns, (ctx.columns - 1) / 2);
  }
};

TEST(RegistryExtension, TestRegisteredTopologyRunsEndToEnd) {
  if (!topology_registry().contains("test-complete")) {
    topology_registry().add("test-complete", "complete graph (test-only)", {},
                            [](const ComponentSpec&) {
                              return std::make_shared<const CompleteGraphTopology>();
                            });
  }
  const ExperimentConfig config = config_from_json(Json::parse(R"({
    "base_graph": "test-complete",
    "columns": 5,
    "layers": 4,
    "pulses": 5
  })"));
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.diameter, 1u);
  EXPECT_GT(result.counters.iterations, 0u);
}

}  // namespace
}  // namespace gtrix
