// Lemma B.2: without faults, the full algorithm (Algorithm 3) produces the
// same pulse times as the simplified one (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

class EquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceSweep, FullMatchesSimplified) {
  ExperimentConfig config;
  config.columns = 9;
  config.layers = 9;
  config.pulses = 15;
  config.seed = GetParam();

  config.algorithm = Algorithm::kGradientFull;
  World full(config);
  full.run_to_completion();

  config.algorithm = Algorithm::kGradientSimplified;
  World simplified(config);
  simplified.run_to_completion();

  const auto& grid = full.grid();
  const auto& rec_full = full.recorder();
  const auto& rec_simple = simplified.recorder();
  std::uint64_t compared = 0;
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const Sigma from = std::max(rec_full.steady_from(g, 4), rec_simple.steady_from(g, 4));
    const Sigma last =
        std::min(rec_full.last_recorded(g), rec_simple.last_recorded(g)) - 1;
    for (Sigma s = from; s <= last; ++s) {
      const auto tf = rec_full.pulse_time(g, s);
      const auto ts = rec_simple.pulse_time(g, s);
      if (!tf || !ts) continue;
      ASSERT_NEAR(*tf, *ts, 1e-6) << grid.label(g) << " wave " << s;
      ++compared;
    }
  }
  EXPECT_GT(compared, 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Equivalence, CorrectionsMatchToo) {
  ExperimentConfig config;
  config.columns = 7;
  config.layers = 7;
  config.pulses = 12;
  config.seed = 77;

  World full(config);
  full.run_to_completion();
  config.algorithm = Algorithm::kGradientSimplified;
  World simplified(config);
  simplified.run_to_completion();

  const auto& grid = full.grid();
  std::uint64_t compared = 0;
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (grid.layer_of(g) == 0) continue;
    const auto& rf = full.recorder().iterations(g);
    const auto& rs = simplified.recorder().iterations(g);
    for (const auto& itf : rf) {
      if (itf.late || itf.timeout_branch) continue;
      for (const auto& its : rs) {
        if (its.sigma != itf.sigma || its.late) continue;
        ASSERT_NEAR(itf.correction, its.correction, 1e-6)
            << grid.label(g) << " wave " << itf.sigma;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 200u);
}

TEST(Equivalence, DivergesWithFaults) {
  // Sanity: the two algorithms are NOT interchangeable when a predecessor
  // is silent -- the simplified one deadlocks on the missing message, so
  // nodes downstream of the crash stop pulsing.
  ExperimentConfig config;
  config.columns = 7;
  config.layers = 7;
  config.pulses = 12;
  config.seed = 78;
  config.faults = {{3, 2, FaultSpec::crash()}};

  World full(config);
  full.run_to_completion();
  config.algorithm = Algorithm::kGradientSimplified;
  World simplified(config);
  simplified.run_to_completion();

  // The crashed node's own successor never completes an iteration under
  // Algorithm 1, but does under Algorithm 3.
  const auto& grid = full.grid();
  const GridNodeId successor = grid.id(3, 3);
  EXPECT_GT(full.recorder().iterations(successor).size(),
            simplified.recorder().iterations(successor).size());
}

}  // namespace
}  // namespace gtrix
