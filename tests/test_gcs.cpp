// Continuous GCS baseline [LLW10]: local skew O(kappa_g log D), global
// O(kappa_g D), crash tolerance only.
#include <gtest/gtest.h>

#include <cmath>

#include "gcs/gcs.hpp"

namespace gtrix {
namespace {

GcsConfig base_config(std::uint32_t columns, std::uint64_t seed) {
  GcsConfig config;
  config.columns = columns;
  config.seed = seed;
  return config;
}

TEST(Gcs, RunsAndProducesSamples) {
  const GcsResult result = run_gcs(base_config(8, 1));
  EXPECT_GT(result.samples, 0u);
  EXPECT_GT(result.kappa_g, 0.0);
  EXPECT_GT(result.local_skew, 0.0);
}

TEST(Gcs, LocalSkewBoundedByKappaLogD) {
  for (std::uint32_t columns : {8u, 16u, 24u}) {
    const GcsResult result = run_gcs(base_config(columns, 2));
    const double bound =
        4.0 * result.kappa_g * (2.0 + std::log2(static_cast<double>(columns - 1)));
    EXPECT_LE(result.local_skew, bound) << "columns=" << columns;
  }
}

TEST(Gcs, GlobalSkewScalesWithDiameter) {
  const GcsResult small = run_gcs(base_config(8, 3));
  const GcsResult large = run_gcs(base_config(32, 3));
  EXPECT_GT(large.global_skew, small.global_skew);
  // Global skew stays within the Theta(kappa D) envelope.
  EXPECT_LE(large.global_skew, 4.0 * large.kappa_g * 31.0);
}

TEST(Gcs, LocalBeatsGlobalOnLargeGrids) {
  const GcsResult result = run_gcs(base_config(32, 4));
  EXPECT_LT(result.local_skew, result.global_skew);
}

TEST(Gcs, FastModeActuallyEngages) {
  const GcsResult result = run_gcs(base_config(16, 5));
  EXPECT_GT(result.fast_mode_activations, 0u);
}

TEST(Gcs, SurvivesACrash) {
  GcsConfig config = base_config(16, 6);
  config.crashes = {8};  // interior node stops participating
  const GcsResult result = run_gcs(config);
  // Remaining nodes stay synchronized through the redundant paths
  // (replicated line keeps degree >= 2 fault-free connectivity only at the
  // ends, so allow a generous but finite envelope).
  const double bound =
      8.0 * result.kappa_g * (2.0 + std::log2(static_cast<double>(config.columns - 1)));
  EXPECT_LE(result.local_skew, bound);
}

TEST(Gcs, DeterministicForSeed) {
  const GcsResult a = run_gcs(base_config(12, 7));
  const GcsResult b = run_gcs(base_config(12, 7));
  EXPECT_DOUBLE_EQ(a.local_skew, b.local_skew);
  EXPECT_DOUBLE_EQ(a.global_skew, b.global_skew);
}

TEST(Gcs, TighterDelaysImproveSkew) {
  GcsConfig coarse = base_config(16, 8);
  coarse.u = 40.0;
  GcsConfig fine = base_config(16, 8);
  fine.u = 5.0;
  const GcsResult a = run_gcs(coarse);
  const GcsResult b = run_gcs(fine);
  EXPECT_LT(b.local_skew, a.local_skew);
}

TEST(Gcs, RejectsZeroBoost) {
  GcsConfig config = base_config(8, 9);
  config.mu = 0.0;
  EXPECT_THROW(run_gcs(config), std::logic_error);
}

}  // namespace
}  // namespace gtrix
