// Appendix A (Lemma A.1 / Corollary A.2): the layer-0 line forwarding
// scheme produces per-hop pulse offsets in [Lambda - kappa/2, Lambda] and
// per-node periods of exactly Lambda under static conditions.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig line_config(std::uint32_t columns, std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = 2;  // layer 0 plus one consumer layer
  config.pulses = 12;
  config.layer0 = Layer0Mode::kLinePropagation;
  config.seed = seed;
  return config;
}

TEST(Layer0Line, EveryNodeForwardsEveryWave) {
  const ExperimentConfig config = line_config(8, 1);
  World world(config);
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
    const GridNodeId g = grid.id(v, 0);
    const std::uint32_t c = grid.base().column(v);
    // Waves 1..pulses exist as sigma = k + column.
    for (std::int64_t k = 1; k <= config.pulses; ++k) {
      EXPECT_TRUE(rec.pulse_time(g, k + c).has_value())
          << grid.label(g) << " missing wave " << k;
    }
  }
}

TEST(Layer0Line, PeriodIsExactlyLambda) {
  const ExperimentConfig config = line_config(8, 2);
  World world(config);
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
    const GridNodeId g = grid.id(v, 0);
    const std::uint32_t c = grid.base().column(v);
    for (std::int64_t k = 1; k + 1 <= config.pulses; ++k) {
      const auto t1 = rec.pulse_time(g, k + c);
      const auto t2 = rec.pulse_time(g, k + 1 + c);
      ASSERT_TRUE(t1 && t2);
      // Static delays and clock rates: consecutive pulses exactly Lambda
      // apart (Lemma A.1's induction).
      EXPECT_NEAR(*t2 - *t1, config.params.lambda, 1e-6);
    }
  }
}

TEST(Layer0Line, HopOffsetWithinLemmaA1Window) {
  const ExperimentConfig config = line_config(10, 3);
  World world(config);
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  const double kappa = config.params.kappa();
  const double lambda = config.params.lambda;
  // Between column c's primary node (pulse k) and column c+1 (pulse k):
  // t_{c+1} - t_c in [Lambda - kappa/2, Lambda].
  for (std::uint32_t c = 0; c + 1 < grid.base().column_count(); ++c) {
    const GridNodeId a = grid.id(grid.base().nodes_in_column(c).front(), 0);
    for (BaseNodeId w : grid.base().nodes_in_column(c + 1)) {
      const GridNodeId b = grid.id(w, 0);
      for (std::int64_t k = 2; k <= config.pulses - 1; ++k) {
        const auto ta = rec.pulse_time(a, k + c);
        const auto tb = rec.pulse_time(b, k + c + 1);
        ASSERT_TRUE(ta && tb);
        const double hop = *tb - *ta;
        EXPECT_GE(hop, lambda - kappa / 2.0 - 1e-6);
        EXPECT_LE(hop, lambda + 1e-6);
      }
    }
  }
}

TEST(Layer0Line, LocalSkewBelowHalfKappa) {
  // L_0 <= kappa/2 in the shifted (sigma) indexing (Lemma A.1).
  const ExperimentConfig config = line_config(12, 4);
  World world(config);
  world.run_to_completion();
  const auto report = world.skew();
  ASSERT_GT(report.pairs_checked, 0u);
  EXPECT_LE(report.intra_by_layer[0], config.params.kappa() / 2.0 + 1e-6);
}

TEST(Layer0Line, SelfStabilizesAfterCorruption) {
  // Corrupt every line node mid-run; within D Lambda the line must forward
  // waves with the usual spacing again (Lemma A.1 stabilization).
  ExperimentConfig config = line_config(8, 5);
  config.pulses = 30;
  World world(config);
  Rng rng(99);
  world.run_until(10.0 * config.params.lambda);
  for (GridNodeId g = 0; g < world.grid().node_count(); ++g) {
    if (world.layer0_node(g) != nullptr) world.layer0_node(g)->corrupt_state(rng);
  }
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  // Waves near the end must be cleanly spaced again at every node.
  for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
    const GridNodeId g = grid.id(v, 0);
    const std::uint32_t c = grid.base().column(v);
    const auto t1 = rec.pulse_time(g, config.pulses - 2 + c);
    const auto t2 = rec.pulse_time(g, config.pulses - 1 + c);
    ASSERT_TRUE(t1 && t2) << grid.label(g);
    EXPECT_NEAR(*t2 - *t1, config.params.lambda, 1e-6);
  }
}

TEST(Layer0Ideal, EmittersHonorJitterBound) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 2;
  config.pulses = 6;
  config.layer0 = Layer0Mode::kIdealJitter;
  config.layer0_jitter = 7.0;
  config.seed = 6;
  World world(config);
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  for (std::int64_t k = 1; k <= config.pulses; ++k) {
    for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
      const auto t = rec.pulse_time(grid.id(v, 0), k);
      ASSERT_TRUE(t.has_value());
      const double nominal = static_cast<double>(k) * config.params.lambda;
      EXPECT_GE(*t, nominal - 1e-9);
      EXPECT_LE(*t, nominal + 7.0 + 1e-9);
    }
  }
}

TEST(Layer0Ideal, OffsetsAreStaticAcrossWaves) {
  ExperimentConfig config;
  config.columns = 6;
  config.layers = 2;
  config.pulses = 8;
  config.seed = 7;
  World world(config);
  world.run_to_completion();
  const auto& rec = world.recorder();
  const auto& grid = world.grid();
  for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
    const GridNodeId g = grid.id(v, 0);
    const double offset0 = *rec.pulse_time(g, 1) - config.params.lambda;
    for (std::int64_t k = 2; k <= config.pulses; ++k) {
      const double offset =
          *rec.pulse_time(g, k) - static_cast<double>(k) * config.params.lambda;
      EXPECT_NEAR(offset, offset0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace gtrix
