// Checkpoint subsystem harness (src/ckpt/, runner/ckpt_runner.hpp): a world
// snapshotted mid-run and restored into a freshly constructed world must
// continue bit-identically -- same skew digest, same counters -- at every
// (scheduler, shard count) combination, including mid-run corruption and
// streaming recording. Plus the hard-failure contract: truncated, corrupt,
// version-bumped and config-mismatched checkpoints throw CkptError with a
// message naming the file, never a silent partial restore.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "runner/campaign.hpp"
#include "runner/ckpt_runner.hpp"
#include "runner/experiment.hpp"
#include "runner/perf.hpp"
#include "runner/result_io.hpp"
#include "scenario/spec.hpp"

namespace gtrix {
namespace {

ExperimentConfig tiny_config() {
  return config_from_json(Json::parse(R"({"columns": 6, "layers": 6, "pulses": 10})"));
}

ExperimentConfig streaming_config() {
  return config_from_json(
      Json::parse(R"({"columns": 6, "layers": 6, "pulses": 10, "recording": "streaming"})"));
}

ExperimentConfig corrupt_config() {
  return config_from_json(Json::parse(
      R"({"columns": 6, "layers": 6, "pulses": 40, "self_stabilizing": true})"));
}

ExperimentConfig corrupt_streaming_config() {
  return config_from_json(
      Json::parse(R"({"columns": 6, "layers": 6, "pulses": 40, "self_stabilizing": true,
                      "recording": {"kind": "streaming", "window": 16}})"));
}

CorruptPlan corrupt_plan() {
  CorruptPlan plan;
  plan.enabled = true;
  plan.wave = 10.0;
  plan.fraction = 1.0;
  return plan;
}

// A fresh scratch directory per call, under the system temp dir.
std::filesystem::path scratch_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gtrix_ckpt_test_" + tag + "_" + std::to_string(++counter));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string counters_digest(const ExperimentResult& r) {
  const ExperimentCounters& c = r.counters;
  return std::to_string(c.iterations) + "/" + std::to_string(c.late_broadcasts) + "/" +
         std::to_string(c.guard_aborts) + "/" + std::to_string(c.watchdog_resets) + "/" +
         std::to_string(c.timeout_branches) + "/" + std::to_string(c.duplicate_drops) + "/" +
         std::to_string(c.events_executed) + "/" + std::to_string(c.messages_sent) + "/" +
         std::to_string(c.messages_delivered) + "/" + std::to_string(c.delivery_events);
}

// Runs the cell uninterrupted and via save-at-t -> restore-into-fresh-world
// -> continue, and requires identical skew and counters.
void expect_roundtrip_identical(const ExperimentConfig& config, EngineOptions engine,
                                double save_t, const std::string& what) {
  ExperimentResult baseline;
  {
    World world(config, engine);
    world.run_to_completion();
    EXPECT_TRUE(world.idle()) << what;
    baseline = measure_cell(world, config, {});
  }
  std::vector<std::uint8_t> image;
  {
    World world(config, engine);
    world.run_until(save_t);
    image = world.checkpoint_save("");
  }
  World resumed(config, engine);
  {
    CkptFile file = CkptFile::parse(image, "mem.ckpt");
    resumed.checkpoint_restore(file);
  }
  resumed.run_to_completion();
  const ExperimentResult result = measure_cell(resumed, config, {});
  EXPECT_EQ(skew_digest(result), skew_digest(baseline)) << what;
  EXPECT_EQ(counters_digest(result), counters_digest(baseline)) << what;
}

TEST(Ckpt, RestoreContinuesBitIdenticallyAcrossShardsAndSchedulers) {
  const ExperimentConfig config = tiny_config();
  const double mid = 4.5 * config.params.lambda;
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    EngineOptions engine;
    engine.shards = shards;
    expect_roundtrip_identical(config, engine, mid,
                               "calendar/" + std::to_string(shards) + " shards");
    EngineOptions reference = EngineOptions::reference();
    reference.shards = shards;
    expect_roundtrip_identical(config, reference, mid,
                               "reference/" + std::to_string(shards) + " shards");
  }
}

TEST(Ckpt, RestoreContinuesBitIdenticallyUnderStreamingRecording) {
  const ExperimentConfig config = streaming_config();
  const double mid = 5.0 * config.params.lambda;
  for (const std::uint32_t shards : {1u, 2u}) {
    EngineOptions engine;
    engine.shards = shards;
    expect_roundtrip_identical(config, engine, mid,
                               "streaming/" + std::to_string(shards) + " shards");
  }
}

TEST(Ckpt, RestoreAtEveryBoundaryMatchesUninterruptedRun) {
  // Simulated kill-at-boundary: run the checkpointed runner to completion
  // once per boundary count, each time taking the snapshot left by an
  // earlier prefix and resuming it in a fresh runner invocation. Resumed
  // results must match the plain run_cell result exactly.
  const ExperimentConfig config = tiny_config();
  const double every = 2.0 * config.params.lambda;
  const std::string baseline = skew_digest(run_cell(config, {}));

  for (const std::uint32_t shards : {1u, 2u}) {
    EngineOptions engine;
    engine.shards = shards;

    // Uninterrupted checkpointed run: chunked execution changes nothing.
    const auto dir = scratch_dir("chunked");
    CheckpointOptions opts;
    opts.dir = dir.string();
    opts.every = every;
    const ExperimentResult chunked =
        run_cell_checkpointed(config, {}, opts, 0, "base", engine);
    EXPECT_EQ(skew_digest(chunked), baseline) << shards << " shards";
    EXPECT_GT(chunked.engine_stats.checkpoints_written, 0u);
    EXPECT_GT(chunked.engine_stats.checkpoint_bytes, 0u);
    ASSERT_TRUE(std::filesystem::exists(dir / "cell-00000-base.ckpt"));
    ASSERT_TRUE(std::filesystem::exists(dir / "cell-00000-base.done.json"));

    // Kill-after-last-snapshot: drop the done marker, keep the snapshot;
    // resume must restore (not restart) and land on the same bytes.
    std::filesystem::remove(dir / "cell-00000-base.done.json");
    opts.resume = true;
    const ExperimentResult resumed =
        run_cell_checkpointed(config, {}, opts, 0, "base", engine);
    EXPECT_EQ(skew_digest(resumed), baseline) << shards << " shards resumed";
    EXPECT_EQ(resumed.engine_stats.checkpoints_restored, 1u);

    // Completed cell: resume short-circuits to the done file, zero re-run.
    const ExperimentResult reloaded =
        run_cell_checkpointed(config, {}, opts, 0, "base", engine);
    EXPECT_EQ(skew_digest(reloaded), baseline) << shards << " shards reloaded";
    EXPECT_EQ(reloaded.engine_stats.cells_resumed_done, 1u);
    EXPECT_EQ(counters_digest(reloaded), counters_digest(resumed));
    std::filesystem::remove_all(dir);
  }
}

TEST(Ckpt, CorruptCellResumesIdenticallyAcrossThePhaseBoundary) {
  const ExperimentConfig config = corrupt_config();
  const CorruptPlan plan = corrupt_plan();
  const std::string baseline = skew_digest(run_cell(config, plan));

  // `every` chosen so snapshots land both before wave 10 (phase 0) and
  // after (phase 1); the kill-and-resume covers whichever is newest.
  for (const double every : {3.0 * config.params.lambda, 14.0 * config.params.lambda}) {
    const auto dir = scratch_dir("corrupt");
    CheckpointOptions opts;
    opts.dir = dir.string();
    opts.every = every;
    const ExperimentResult chunked = run_cell_checkpointed(config, plan, opts, 3, "c", {});
    EXPECT_EQ(skew_digest(chunked), baseline) << "every=" << every;

    std::filesystem::remove(dir / "cell-00003-c.done.json");
    opts.resume = true;
    const ExperimentResult resumed = run_cell_checkpointed(config, plan, opts, 3, "c", {});
    EXPECT_EQ(skew_digest(resumed), baseline) << "every=" << every << " resumed";
    EXPECT_EQ(counters_digest(resumed), counters_digest(chunked)) << "every=" << every;
    std::filesystem::remove_all(dir);
  }
}

TEST(Ckpt, CorruptStreamingCellResumesIdenticallyMidCorruptionAndMidRecovery) {
  // Corruption-anchored retention must survive a snapshot/restore: kills
  // landing mid-corruption (look-back box partially filled) and
  // mid-recovery (realignment tail still accumulating) have to resume to
  // the same realigned skew bytes as the uninterrupted streaming run --
  // which itself must match full recording on the same cell.
  const ExperimentConfig config = corrupt_streaming_config();
  const CorruptPlan plan = corrupt_plan();
  const std::string baseline = skew_digest(run_cell(config, plan));
  EXPECT_EQ(skew_digest(run_cell(corrupt_config(), plan)), baseline)
      << "streaming corrupt cell diverged from full recording";

  // every=3 lambda: the newest snapshot before the kill sits at wave 12 --
  // inside the corruption box, labels not yet realigned. every=11 lambda:
  // the newest snapshot sits at wave 11, one wave into recovery.
  for (const double every : {3.0 * config.params.lambda, 11.0 * config.params.lambda}) {
    for (const std::uint32_t shards : {1u, 2u}) {
      EngineOptions engine;
      engine.shards = shards;
      const auto dir = scratch_dir("corrupt_stream");
      CheckpointOptions opts;
      opts.dir = dir.string();
      opts.every = every;
      const std::string tag = "every=" + std::to_string(every) + " shards=" + std::to_string(shards);
      const ExperimentResult chunked =
          run_cell_checkpointed(config, plan, opts, 7, "cs", engine);
      EXPECT_EQ(skew_digest(chunked), baseline) << tag;

      std::filesystem::remove(dir / "cell-00007-cs.done.json");
      opts.resume = true;
      const ExperimentResult resumed =
          run_cell_checkpointed(config, plan, opts, 7, "cs", engine);
      EXPECT_EQ(skew_digest(resumed), baseline) << tag << " resumed";
      EXPECT_EQ(resumed.engine_stats.checkpoints_restored, 1u) << tag;
      EXPECT_EQ(counters_digest(resumed), counters_digest(chunked)) << tag;
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(Ckpt, HardFailuresNameTheFileAndTheCause) {
  const ExperimentConfig config = tiny_config();
  World world(config, {});
  world.run_until(2.0 * config.params.lambda);
  const std::vector<std::uint8_t> image = world.checkpoint_save("");

  const auto expect_throw_with = [](const std::vector<std::uint8_t>& bytes,
                                    const std::string& needle) {
    try {
      CkptFile::parse(bytes, "x.ckpt");
      FAIL() << "expected CkptError containing '" << needle << "'";
    } catch (const CkptError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("x.ckpt"), std::string::npos) << e.what();
    }
  };

  std::vector<std::uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xFF;
  expect_throw_with(bad_magic, "bad magic");

  std::vector<std::uint8_t> bad_version = image;
  bad_version[8] = 0x2A;  // u32 version lives right after the 8-byte magic
  expect_throw_with(bad_version, "version 42 is not supported");

  std::vector<std::uint8_t> truncated(image.begin(), image.begin() + image.size() / 2);
  expect_throw_with(truncated, "checkpoint");

  std::vector<std::uint8_t> flipped = image;
  flipped[image.size() / 2] ^= 0x01;
  expect_throw_with(flipped, "CRC mismatch");

  // Config mismatch: the restore target was built under different params.
  ExperimentConfig other = tiny_config();
  other.seed += 1;
  World target(other, {});
  CkptFile file = CkptFile::parse(image, "x.ckpt");
  try {
    target.checkpoint_restore(file);
    FAIL() << "expected config-mismatch CkptError";
  } catch (const CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("different experiment config"), std::string::npos)
        << e.what();
  }

  // Engine mismatch: same config, different shard layout.
  EngineOptions sharded;
  sharded.shards = 2;
  World sharded_target(config, sharded);
  CkptFile file2 = CkptFile::parse(image, "x.ckpt");
  try {
    sharded_target.checkpoint_restore(file2);
    FAIL() << "expected engine-mismatch CkptError";
  } catch (const CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("engine fingerprint"), std::string::npos) << e.what();
  }
}

TEST(Ckpt, ResultJsonRoundTripIsBitExact) {
  EngineOptions engine;
  engine.telemetry = true;
  engine.shards = 2;
  const ExperimentResult result = run_cell(corrupt_config(), corrupt_plan(), engine);
  // Through TEXT, not just Json values: the done file lives on disk, so the
  // dump/parse leg is part of the contract (shortest-round-trip doubles).
  const Json reparsed = Json::parse(result_to_json(result).dump());
  const ExperimentResult back = result_from_json(reparsed, "done.json");
  EXPECT_EQ(skew_digest(back), skew_digest(result));
  EXPECT_EQ(counters_digest(back), counters_digest(result));
  EXPECT_EQ(back.thm11_bound, result.thm11_bound);
  EXPECT_EQ(back.global_bound, result.global_bound);
  EXPECT_EQ(back.diameter, result.diameter);
  EXPECT_EQ(back.skew.inter_by_layer, result.skew.inter_by_layer);
  EXPECT_EQ(back.skew.spread_by_layer, result.skew.spread_by_layer);
  if (kObsCompiled) {
    EXPECT_EQ(back.engine_stats.enabled, result.engine_stats.enabled);
    EXPECT_EQ(back.engine_stats.get(ObsCounter::kEventsExecuted),
              result.engine_stats.get(ObsCounter::kEventsExecuted));
    EXPECT_EQ(back.engine_stats.shards.size(), result.engine_stats.shards.size());
    EXPECT_EQ(back.engine_stats.window_events.total(),
              result.engine_stats.window_events.total());
  }

  try {
    result_from_json(Json::parse(R"({"format": "nope"})"), "bad.json");
    FAIL() << "expected CkptError on foreign document";
  } catch (const CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.json"), std::string::npos) << e.what();
  }
}

TEST(Ckpt, CampaignWithCheckpointDirMatchesPlainCampaign) {
  const Scenario scenario = Scenario::from_json(Json::parse(R"({
    "name": "ckpt-tiny",
    "config": {"columns": 6, "layers": 6, "pulses": 10},
    "sweep": {"seed": [1, 2]}
  })"));
  const std::string plain =
      campaign_jsonl(run_campaign(scenario, CampaignOptions{.threads = 1}));

  const auto dir = scratch_dir("campaign");
  CampaignOptions options;
  options.threads = 2;
  options.checkpoint.dir = dir.string();
  options.checkpoint.every = 2.0 * 2000.0;  // two nominal waves of sim time
  const std::string checkpointed = campaign_jsonl(run_campaign(scenario, options));
  EXPECT_EQ(checkpointed, plain);

  // Resume over a fully completed campaign reloads every cell from its done
  // file and still reproduces the bytes.
  options.checkpoint.resume = true;
  const CampaignResult resumed = run_campaign(scenario, options);
  EXPECT_EQ(campaign_jsonl(resumed), plain);
  std::filesystem::remove_all(dir);
}

TEST(Ckpt, AtomicWriteReplacesDurablyAndLeavesNoTemp) {
  // Regression coverage for the write path behind every snapshot: the
  // documented contract is tmp + fsync + rename (the fsync was missing until
  // the static-analysis sweep caught the doc/code mismatch). The durability
  // half is not observable from a unit test, but the atomicity half is:
  // content round-trips, an overwrite replaces the old bytes, and no .tmp
  // file survives either the success or the failure path.
  const auto dir = scratch_dir("atomic-write");
  const std::string path = (dir / "snap.ckpt").string();

  const std::vector<std::uint8_t> first = {0x01, 0x02, 0x03};
  ckpt_write_file_atomic(path, first);
  EXPECT_EQ(ckpt_read_file(path), first);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const std::vector<std::uint8_t> second = {0xFF, 0xEE, 0xDD, 0xCC};
  ckpt_write_file_atomic(path, second);
  EXPECT_EQ(ckpt_read_file(path), second);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  ckpt_write_file_atomic(path, {});  // empty snapshots are legal
  EXPECT_TRUE(ckpt_read_file(path).empty());

  const std::string bad = (dir / "missing-subdir" / "snap.ckpt").string();
  EXPECT_THROW(ckpt_write_file_atomic(bad, second), CkptError);
  EXPECT_FALSE(std::filesystem::exists(bad + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(Ckpt, CellKeyIsStableAndSanitized) {
  EXPECT_EQ(cell_key(0, "base"), "cell-00000-base");
  EXPECT_EQ(cell_key(12, "layers=6/seed=100"), "cell-00012-layers_6_seed_100");
  const std::string long_label(200, 'a');
  EXPECT_LE(cell_key(3, long_label).size(), std::string("cell-00003-").size() + 80);
}

}  // namespace
}  // namespace gtrix
