// Sharded-engine differential harness: the conservative-parallel engine
// (EngineOptions::shards > 1; runner/shard_driver.hpp) must be bit-identical
// to the serial engine on every builtin scenario -- including mid-run
// corruption (the run_until window path) and streaming recording -- and the
// campaign JSONL must not depend on the (threads, shards) combination.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "runner/perf.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"

namespace gtrix {
namespace {

// Thins a builtin scenario document to one cell: every sweep axis keeps only
// its last value (the last value exercises the "most faulted" end of fault
// axes), and the mega-grid scale scenarios shrink to a 40x40 grid so the
// differential run stays test-sized while keeping their topology and
// streaming-recording coverage.
Json thin_doc(Json doc) {
  if (doc.contains("sweep")) {
    Json thin = Json::object();
    for (const auto& [key, value] : doc.at("sweep").as_object()) {
      Json axis = Json::array();
      if (value.is_array()) {
        axis.push_back(value.as_array().back());
      } else {
        axis.push_back(value.at("from"));  // {"from","count"} range spec
      }
      thin.set(key, std::move(axis));
    }
    doc.set("sweep", std::move(thin));
  }
  Json config = doc.at("config");
  if (config.contains("columns") && config.at("columns").as_int() >= 256) {
    config.set("columns", static_cast<std::int64_t>(40));
    config.set("layers", static_cast<std::int64_t>(40));
    doc.set("config", std::move(config));
  }
  return doc;
}

TEST(Sharded, ShardPlanUsesContiguousColumnRanges) {
  const auto cells = builtin_scenario("quickstart-grid").cells();
  const ExperimentConfig& config = cells.front().config;  // 6 columns
  EngineOptions engine;
  engine.shards = 4;
  World world(config, engine);
  ASSERT_EQ(world.shard_count(), 4u);
  std::vector<bool> used(4, false);
  std::uint32_t previous = 0;
  for (GridNodeId g = 0; g < world.grid().node_count(); ++g) {
    const std::uint32_t col = world.grid().base().column(world.grid().base_of(g));
    const std::uint32_t shard = world.shard_of(g);
    EXPECT_EQ(shard, col * 4u / 6u) << "node " << g;
    EXPECT_GE(shard, col == 0 ? 0u : previous);
    used[shard] = true;
    previous = shard;
  }
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_TRUE(used[s]) << "empty shard " << s;
}

TEST(Sharded, ShardCountClampsToColumns) {
  const auto cells = builtin_scenario("quickstart-grid").cells();
  const ExperimentConfig& config = cells.front().config;  // 6 columns
  for (const auto& [requested, expected] :
       {std::pair<std::uint32_t, std::uint32_t>{0, 1},
        {1, 1},
        {2, 2},
        {6, 6},
        {8, 6},
        {4096, 6}}) {
    EngineOptions engine;
    engine.shards = requested;
    World world(config, engine);
    EXPECT_EQ(world.shard_count(), expected) << "requested " << requested;
  }
}

TEST(Sharded, LineModeClockSourceLivesInShardZero) {
  auto cells = builtin_scenario("quickstart-grid").cells();
  ExperimentConfig config = cells.front().config;
  config.layer0 = Layer0Mode::kLinePropagation;
  EngineOptions engine;
  engine.shards = 3;
  World world(config, engine);
  ASSERT_EQ(world.shard_count(), 3u);
  // The line-mode clock source is the extra net node after the grid nodes;
  // it feeds column 0 and must share its shard.
  EXPECT_EQ(world.shard_of(world.grid().node_count()), 0u);
}

TEST(Sharded, ShardGateIsIdenticalOverTheReferenceEngine) {
  // Same shape as Perf.EveryEngineGateIsIndividuallyIdentical: flip ONLY the
  // shard count against the full reference engine, so sharding cannot
  // "work" by leaning on another optimization masking a divergence.
  const auto cells = builtin_scenario("quickstart-grid").cells();
  const ExperimentConfig& config = cells.front().config;
  const CorruptPlan& corrupt = cells.front().corrupt;
  const std::string baseline =
      skew_digest(run_cell(config, corrupt, EngineOptions::reference()));
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    EngineOptions engine = EngineOptions::reference();
    engine.shards = shards;
    EXPECT_EQ(skew_digest(run_cell(config, corrupt, engine)), baseline)
        << shards << " shards diverged from the serial reference engine";
  }
}

TEST(Sharded, AllBuiltinScenariosIdenticalAcrossShardCounts) {
  // 1-vs-2-vs-4-vs-8-shard differential over every builtin scenario (thinned
  // to one cell each): skew reports AND logical event counts must match the
  // serial engine exactly. Covers corrupt cells (thm16-stabilization runs
  // the run_until + corrupt_fraction + realign path) and streaming
  // recording (the scale scenarios).
  for (const BuiltinInfo& info : builtin_scenarios()) {
    const Scenario scenario = Scenario::from_json(thin_doc(builtin_scenario_doc(info.name)));
    for (const ScenarioCell& cell : scenario.cells()) {
      const ExperimentResult serial = run_cell(cell.config, cell.corrupt, EngineOptions{});
      const std::string baseline = skew_digest(serial);
      const std::uint64_t logical = serial.counters.events_executed -
                                    serial.counters.delivery_events +
                                    serial.counters.messages_delivered;
      for (const std::uint32_t shards : {2u, 4u, 8u}) {
        EngineOptions engine;
        engine.shards = shards;
        const ExperimentResult sharded = run_cell(cell.config, cell.corrupt, engine);
        EXPECT_EQ(skew_digest(sharded), baseline)
            << info.name << " cell " << cell.label << " diverged at " << shards
            << " shards";
        EXPECT_EQ(sharded.counters.events_executed - sharded.counters.delivery_events +
                      sharded.counters.messages_delivered,
                  logical)
            << info.name << " cell " << cell.label << " logical events diverged at "
            << shards << " shards";
        EXPECT_EQ(sharded.counters.messages_delivered, serial.counters.messages_delivered)
            << info.name << " cell " << cell.label;
        EXPECT_EQ(sharded.counters.iterations, serial.counters.iterations)
            << info.name << " cell " << cell.label;
      }
    }
  }
}

TEST(Sharded, RepeatedShardedRunsAreDeterministic) {
  // The mailbox hand-off runs under real thread interleaving; repeat the
  // same 4-shard cell several times to catch schedule-dependent divergence
  // (a lost or duplicated envelope shows up as a changed digest).
  const auto cells = builtin_scenario("quickstart-grid").cells();
  const ExperimentConfig& config = cells.front().config;
  EngineOptions engine;
  engine.shards = 4;
  const std::string first = skew_digest(run_cell(config, {}, engine));
  for (int repeat = 0; repeat < 5; ++repeat) {
    EXPECT_EQ(skew_digest(run_cell(config, {}, engine)), first)
        << "repeat " << repeat;
  }
}

TEST(Sharded, CampaignJsonlIsIdenticalAcrossThreadsAndShards) {
  // Nested parallelism: whatever combination of sweep workers and engine
  // shards the budget resolves to, the campaign JSONL bytes cannot change.
  const Scenario scenario = builtin_scenario("quickstart-grid");
  const std::string baseline = campaign_jsonl(
      run_campaign(scenario, CampaignOptions{.threads = 1, .shards = 1, .recording_override = {}}));
  ASSERT_FALSE(baseline.empty());
  for (const unsigned threads : {1u, 2u, 4u}) {
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      if (threads == 1 && shards == 1) continue;
      const CampaignResult result = run_campaign(
          scenario, CampaignOptions{.threads = threads, .shards = shards, .recording_override = {}});
      EXPECT_EQ(campaign_jsonl(result), baseline)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(Sharded, CampaignBudgetsShardsAgainstSweepThreads) {
  // cells x shards stays within hardware concurrency: shards_used follows
  // the documented formula from the ACTUAL thread count, whatever machine
  // the test runs on.
  const Scenario scenario = builtin_scenario("quickstart-grid");
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  for (const unsigned threads : {1u, 2u}) {
    const CampaignResult result = run_campaign(
        scenario, CampaignOptions{.threads = threads, .shards = 8, .recording_override = {}});
    const std::uint32_t expected = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(8, hardware / std::max(1u, result.threads_used)));
    EXPECT_EQ(result.shards_used, expected) << "threads=" << threads;
    EXPECT_EQ(campaign_summary(result).at("shards").as_int(),
              static_cast<std::int64_t>(expected));
  }
  // An explicit --shards=1 always runs serial regardless of budget headroom.
  const CampaignResult serial =
      run_campaign(scenario, CampaignOptions{.threads = 1, .shards = 1, .recording_override = {}});
  EXPECT_EQ(serial.shards_used, 1u);
}

TEST(Sharded, ScenarioEngineShardsParsesAndValidates) {
  const Scenario with = Scenario::from_json(Json::parse(R"({
    "name": "t", "config": {"columns": 4, "layers": 4, "pulses": 6},
    "engine": {"shards": 4}
  })"));
  EXPECT_EQ(with.engine_shards(), 4u);
  const Scenario without = Scenario::from_json(Json::parse(R"({
    "name": "t", "config": {"columns": 4, "layers": 4, "pulses": 6}
  })"));
  EXPECT_EQ(without.engine_shards(), 1u);
  EXPECT_THROW(Scenario::from_json(Json::parse(R"({
    "name": "t", "config": {}, "engine": {"shards": 0}
  })")),
               std::runtime_error);
  EXPECT_THROW(Scenario::from_json(Json::parse(R"({
    "name": "t", "config": {}, "engine": {"threads": 2}
  })")),
               std::runtime_error);
  // The scenario default feeds the campaign when no --shards override is
  // given; results stay identical to the serial run by construction.
  const Scenario tiny = Scenario::from_json(Json::parse(R"({
    "name": "tiny-sharded",
    "config": {"columns": 6, "layers": 6, "pulses": 8},
    "engine": {"shards": 2}
  })"));
  const CampaignResult defaulted =
      run_campaign(tiny, CampaignOptions{.threads = 1, .shards = 0, .recording_override = {}});
  EXPECT_LE(defaulted.shards_used, 2u);
  Json doc = builtin_scenario_doc("quickstart-grid");
  // Builtin docs deliberately carry no "engine" key: engine choices stay out
  // of committed scenario documents (ROADMAP gating doctrine); the scenario
  // key exists for user files.
  EXPECT_FALSE(doc.contains("engine"));
}

TEST(Sharded, NetworkLookaheadIsMinimumCrossShardDelay) {
  Simulator sim_a;
  Simulator sim_b;
  Network net(sim_a);
  const NetNodeId n0 = net.add_node();
  const NetNodeId n1 = net.add_node();
  const NetNodeId n2 = net.add_node();
  const NetNodeId n3 = net.add_node();
  net.add_edge(n0, n1, 0.25);  // intra-shard: must not bound the lookahead
  net.add_edge(n1, n2, 2.0);   // crosses 0 -> 1
  net.add_edge(n2, n1, 1.5);   // crosses 1 -> 0
  net.add_edge(n2, n3, 0.5);   // intra-shard
  net.configure_shards({&sim_a, &sim_b}, {0, 0, 1, 1});
  EXPECT_EQ(net.shard_count(), 2u);
  EXPECT_DOUBLE_EQ(net.cross_shard_lookahead(), 1.5);
  EXPECT_EQ(net.shard_of(n1), 0u);
  EXPECT_EQ(net.shard_of(n2), 1u);
  EXPECT_EQ(net.earliest_mailbox_time(), kTimeInfinity);
}

TEST(Sharded, ConfiguringASingleShardKeepsTheSerialEngine) {
  Simulator sim;
  Network net(sim);
  const NetNodeId n0 = net.add_node();
  const NetNodeId n1 = net.add_node();
  net.add_edge(n0, n1, 1.0);
  net.configure_shards({&sim}, {0, 0});
  EXPECT_EQ(net.shard_count(), 1u);
  // Serial mode is untouched: topology edits stay legal.
  net.add_edge(n1, n0, 1.0);
  EXPECT_EQ(net.edge_count(), 2u);
}

}  // namespace
}  // namespace gtrix
