#!/usr/bin/env python3
"""Kill-and-resume byte-identity test for gtrix_campaign checkpointing.

For each scenario (plain, mid-run corruption, streaming recording) and each
(threads, shards) combination:
  1. run the campaign uninterrupted once to get the reference JSONL bytes
     and summary (the JSONL is thread/shard-invariant by design, so one
     serial reference serves every combination);
  2. start a fresh checkpointed run, SIGKILL it at a randomized moment
     after its first snapshot hits disk;
  3. rerun with --resume and require byte-identical JSONL plus an identical
     summary skew block (wall-clock and engine-shaped telemetry excluded --
     they are documented as non-portable).

A kill that lands after the campaign already finished still exercises the
done-file reload path; the randomized delay is printed so a failing timing
can be replayed.

Usage: tests/kill_resume_test.py GTRIX_CAMPAIGN_BINARY [--combos=N]
"""
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import time

SCENARIOS = {
    "kr-plain": {
        "name": "kr-plain",
        "config": {"columns": 8, "layers": 10, "pulses": 30},
        "sweep": {"seed": [1, 2, 3]},
    },
    "kr-corrupt": {
        "name": "kr-corrupt",
        "config": {"columns": 8, "layers": 8, "pulses": 40,
                   "self_stabilizing": True},
        "corrupt": {"wave": 10.0, "fraction": 1.0},
        "sweep": {"seed": [1, 2]},
    },
    "kr-stream": {
        "name": "kr-stream",
        "config": {"columns": 8, "layers": 10, "pulses": 30,
                   "recording": "streaming"},
        "sweep": {"seed": [1, 2]},
    },
    # Corruption + streaming recording together: snapshots can land
    # mid-corruption or mid-recovery, and the resume must rebuild the
    # retained realignment window bit-exactly.
    "kr-corrupt-stream": {
        "name": "kr-corrupt-stream",
        "config": {"columns": 8, "layers": 8, "pulses": 40,
                   "self_stabilizing": True,
                   "recording": {"kind": "streaming", "window": 16}},
        "corrupt": {"wave": 10.0, "fraction": 1.0},
        "sweep": {"seed": [1, 2]},
    },
}

COMBOS = [(1, 1), (1, 2), (1, 4), (4, 1), (4, 2), (4, 4)]

# Summary keys that must survive a kill/resume bit-exactly. wall_seconds is
# measured, engine_stats carries engine-shaped + wall-clock telemetry, and
# threads/shards describe the host layout -- all documented as non-portable.
COMPARED_SUMMARY_KEYS = ("scenario", "cells", "local_skew", "global_skew",
                         "cells_within_thm11_bound", "counters")


def fail(msg):
    print(f"kill_resume_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_campaign(binary, scenario_file, out_dir, threads, shards, extra=()):
    cmd = [binary, str(scenario_file), f"--threads={threads}",
           f"--shards={shards}", f"--out={out_dir}", "--quiet", *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc


def summary_subset(path):
    doc = json.loads(path.read_text())
    return {k: doc.get(k) for k in COMPARED_SUMMARY_KEYS}


def kill_after_first_snapshot(proc, ckpt_dir, delay, timeout=120.0):
    """SIGKILL `proc` a randomized delay after its first snapshot lands."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and proc.poll() is None:
        if any(ckpt_dir.rglob("*.ckpt")):
            break
        time.sleep(0.005)
    time.sleep(delay)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=60)
    return proc.returncode


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = argv[1]
    combos = COMBOS
    for arg in argv[2:]:
        if arg.startswith("--combos="):
            combos = COMBOS[:int(arg.split("=", 1)[1])]

    seed = int.from_bytes(os.urandom(4), "little")
    rng = random.Random(seed)
    print(f"kill_resume_test: rng seed {seed}")

    with tempfile.TemporaryDirectory(prefix="gtrix_kill_resume_") as tmp:
        tmp = pathlib.Path(tmp)
        for name, doc in SCENARIOS.items():
            scenario_file = tmp / f"{name}.json"
            scenario_file.write_text(json.dumps(doc))

            ref_dir = tmp / name / "ref"
            run_campaign(binary, scenario_file, ref_dir, 1, 1)
            ref_jsonl = (ref_dir / f"{name}.jsonl").read_bytes()
            ref_summary = summary_subset(ref_dir / f"{name}.summary.json")

            for threads, shards in combos:
                tag = f"{name} threads={threads} shards={shards}"
                work = tmp / name / f"t{threads}s{shards}"
                ckpt_dir = work / "ckpt"
                out_dir = work / "out"
                delay = rng.uniform(0.0, 0.4)

                cmd = [binary, str(scenario_file), f"--threads={threads}",
                       f"--shards={shards}", f"--out={out_dir}", "--quiet",
                       f"--checkpoint-dir={ckpt_dir}", "--checkpoint-every=4000"]
                proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                                        stderr=subprocess.DEVNULL)
                rc = kill_after_first_snapshot(proc, ckpt_dir, delay)
                print(f"kill_resume_test: {tag}: killed after {delay:.3f}s "
                      f"(exit {rc})")

                run_campaign(binary, scenario_file, out_dir, threads, shards,
                             extra=[f"--checkpoint-dir={ckpt_dir}",
                                    "--checkpoint-every=4000", "--resume"])
                resumed_jsonl = (out_dir / f"{name}.jsonl").read_bytes()
                if resumed_jsonl != ref_jsonl:
                    fail(f"{tag}: resumed JSONL differs from the "
                         f"uninterrupted reference (kill delay {delay:.3f}s, "
                         f"rng seed {seed})")
                resumed_summary = summary_subset(out_dir / f"{name}.summary.json")
                if resumed_summary != ref_summary:
                    fail(f"{tag}: resumed summary skew block differs "
                         f"(kill delay {delay:.3f}s, rng seed {seed}):\n"
                         f"  reference: {ref_summary}\n"
                         f"  resumed:   {resumed_summary}")
                print(f"kill_resume_test: {tag}: byte-identical after resume")

        # Corrupt-artifact contract: a damaged snapshot must fail the resume
        # hard (exit 2) with a path-qualified message, never run silently.
        name = "kr-plain"
        scenario_file = tmp / f"{name}.json"
        work = tmp / "corrupt-artifact"
        ckpt_dir = work / "ckpt"
        out_dir = work / "out"
        run_campaign(binary, scenario_file, out_dir, 1, 1,
                     extra=[f"--checkpoint-dir={ckpt_dir}",
                            "--checkpoint-every=4000"])
        victims = sorted(ckpt_dir.rglob("*.ckpt"))
        if not victims:
            fail("checkpointed reference run left no .ckpt files to corrupt")
        victim = victims[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(blob)
        # Remove the done marker so the resume actually opens the snapshot.
        done = victim.parent / (victim.name[:-len(".ckpt")] + ".done.json")
        if done.exists():
            done.unlink()
        cmd = [binary, str(scenario_file), "--threads=1", "--shards=1",
               f"--out={out_dir}", "--quiet", f"--checkpoint-dir={ckpt_dir}",
               "--checkpoint-every=4000", "--resume"]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if proc.returncode != 2:
            fail(f"corrupt snapshot: expected exit 2, got {proc.returncode} "
                 f"(stderr: {proc.stderr!r})")
        if "CRC mismatch" not in proc.stderr or victim.name not in proc.stderr:
            fail(f"corrupt snapshot: stderr lacks a path-qualified CRC "
                 f"message: {proc.stderr!r}")
        print("kill_resume_test: corrupt snapshot fails hard with exit 2")

    print("kill_resume_test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
