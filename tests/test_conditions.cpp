// Property tests for Lemmas D.4, D.5, D.6 (slow / fast / jump conditions),
// D.2, D.3: every recorded steady iteration of every correct node must
// satisfy them, across seeds, drift rates, and delay models.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

struct Scenario {
  std::uint64_t seed;
  double u;
  double theta;
  DelayModelKind delays;
  Layer0Mode layer0;
};

class ConditionSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(ConditionSweep, AllConditionsHold) {
  const Scenario& scenario = GetParam();
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 10;
  config.pulses = 18;
  config.seed = scenario.seed;
  config.params = Params::with(1000.0, scenario.u, scenario.theta);
  config.delay_kind = scenario.delays;
  config.delay_split_column = 5;
  config.layer0 = scenario.layer0;
  ASSERT_TRUE(config.params.valid_for(config.columns - 1, 1.0));

  World world(config);
  world.run_to_completion();
  const ConditionReport report = world.conditions(6);
  EXPECT_GT(report.sc_checked, 0u);
  EXPECT_GT(report.fc_checked, 0u);
  EXPECT_GT(report.jc_checked, 0u);
  EXPECT_TRUE(report.ok()) << report.summary() << "\nfirst violations:\n"
                           << (report.samples.empty() ? "" : report.samples[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ConditionSweep,
    ::testing::Values(
        Scenario{1, 10.0, 1.0005, DelayModelKind::kUniformRandom, Layer0Mode::kIdealJitter},
        Scenario{2, 10.0, 1.0005, DelayModelKind::kUniformRandom, Layer0Mode::kLinePropagation},
        Scenario{3, 5.0, 1.0002, DelayModelKind::kUniformRandom, Layer0Mode::kIdealJitter},
        Scenario{4, 20.0, 1.001, DelayModelKind::kUniformRandom, Layer0Mode::kIdealJitter},
        Scenario{5, 10.0, 1.0005, DelayModelKind::kColumnSplit, Layer0Mode::kIdealJitter},
        Scenario{6, 10.0, 1.0005, DelayModelKind::kAlternating, Layer0Mode::kIdealJitter},
        Scenario{7, 10.0, 1.0005, DelayModelKind::kAllMax, Layer0Mode::kIdealJitter},
        Scenario{8, 10.0, 1.0005, DelayModelKind::kAllMin, Layer0Mode::kLinePropagation},
        Scenario{9, 1.0, 1.00005, DelayModelKind::kUniformRandom, Layer0Mode::kIdealJitter},
        Scenario{10, 10.0, 1.0005, DelayModelKind::kUniformRandom, Layer0Mode::kIdealJitter}));

TEST(Conditions, HoldUnderClockModelExtremes) {
  for (const ClockModelKind model :
       {ClockModelKind::kAllFast, ClockModelKind::kAllSlow, ClockModelKind::kAlternating}) {
    ExperimentConfig config;
    config.columns = 8;
    config.layers = 8;
    config.pulses = 14;
    config.seed = 42;
    config.clock_model = model;
    World world(config);
    world.run_to_completion();
    const ConditionReport report = world.conditions(5);
    EXPECT_TRUE(report.ok()) << "model=" << static_cast<int>(model) << ": "
                             << report.summary();
  }
}

TEST(Conditions, MedianHoldsWithCrashFault) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 10;
  config.pulses = 16;
  config.seed = 11;
  config.faults = {{config.columns / 2, 4, FaultSpec::crash()}};
  World world(config);
  world.run_to_completion();
  const ConditionReport report = world.conditions(5);
  EXPECT_GT(report.median_checked, 0u);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n"
                           << (report.samples.empty() ? "" : report.samples[0]);
}

TEST(Conditions, MedianHoldsWithOffsetFault) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 10;
  config.pulses = 16;
  config.seed = 12;
  config.faults = {{3, 5, FaultSpec::static_offset(150.0)}};
  World world(config);
  world.run_to_completion();
  const ConditionReport report = world.conditions(5);
  EXPECT_GT(report.median_checked, 0u);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n"
                           << (report.samples.empty() ? "" : report.samples[0]);
}

TEST(Conditions, ReportSummaryIsReadable) {
  ConditionReport report;
  report.sc_checked = 10;
  report.sc_violations = 1;
  const std::string s = report.summary();
  EXPECT_NE(s.find("SC 1/10"), std::string::npos);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.total_violations(), 1u);
}

}  // namespace
}  // namespace gtrix
