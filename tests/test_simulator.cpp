#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace gtrix {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> observed;
  sim.at(5.0, [&](SimTime) { observed.push_back(sim.now()); });
  sim.at(2.0, [&](SimTime) { observed.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(observed, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.at(3.0, [](SimTime) {});
  sim.run_all();
  EXPECT_THROW(sim.at(2.0, [](SimTime) {}), std::logic_error);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(10.0, [&](SimTime) {
    sim.after(5.0, [&](SimTime t) { fired_at = t; });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.after(-1.0, [](SimTime) {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&](SimTime) { ++fired; });
  sim.at(2.0, [&](SimTime) { ++fired; });
  sim.at(3.0, [&](SimTime) { ++fired; });
  const auto executed = sim.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_all();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesCursorEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, EventBudgetGuardsInfiniteLoops) {
  Simulator sim;
  std::function<void(SimTime)> loop = [&](SimTime) { sim.after(1.0, loop); };
  sim.at(0.0, loop);
  EXPECT_THROW(sim.run_all(100), std::logic_error);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.at(1.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ExecutedEventCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.at(static_cast<double>(i), [](SimTime) {});
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 17u);
}

}  // namespace
}  // namespace gtrix
