#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace gtrix {
namespace {

/// Records fire times and the simulator's now() at dispatch.
struct Probe final : TimerTarget {
  Simulator* sim = nullptr;
  std::vector<SimTime> observed_now;
  std::vector<Event> events;

  void on_timer(const Event& event) override {
    events.push_back(event);
    if (sim != nullptr) observed_now.push_back(sim->now());
  }
};

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  Probe probe;
  probe.sim = &sim;
  sim.at(5.0, &probe, 0);
  sim.at(2.0, &probe, 0);
  sim.run_all();
  EXPECT_EQ(probe.observed_now, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  Probe probe;
  sim.at(3.0, &probe, 0);
  sim.run_all();
  EXPECT_THROW(sim.at(2.0, &probe, 0), std::logic_error);
}

/// Schedules a follow-up event relative to now() when fired.
struct RelayTarget final : TimerTarget {
  Simulator* sim = nullptr;
  Probe* probe = nullptr;

  void on_timer(const Event& /*event*/) override { sim->after(5.0, probe, 0); }
};

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Probe probe;
  RelayTarget relay;
  relay.sim = &sim;
  relay.probe = &probe;
  sim.at(10.0, &relay, 0);
  sim.run_all();
  ASSERT_EQ(probe.events.size(), 1u);
  EXPECT_DOUBLE_EQ(probe.events[0].time, 15.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  Probe probe;
  EXPECT_THROW(sim.after(-1.0, &probe, 0), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  Probe probe;
  sim.at(1.0, &probe, 0);
  sim.at(2.0, &probe, 0);
  sim.at(3.0, &probe, 0);
  const auto executed = sim.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(probe.events.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_all();
  EXPECT_EQ(probe.events.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesCursorEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

/// Reschedules itself forever (event-budget guard test).
struct LoopTarget final : TimerTarget {
  Simulator* sim = nullptr;

  void on_timer(const Event& /*event*/) override { sim->after(1.0, this, 0); }
};

TEST(Simulator, EventBudgetGuardsInfiniteLoops) {
  Simulator sim;
  LoopTarget loop;
  loop.sim = &sim;
  sim.at(0.0, &loop, 0);
  EXPECT_THROW(sim.run_all(100), std::logic_error);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  Probe probe;
  TimerHandle h = sim.at(1.0, &probe, 0);
  EXPECT_TRUE(sim.pending(h));
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(static_cast<bool>(h));  // cancel() resets the handle
  EXPECT_FALSE(sim.cancel(h));
  sim.run_all();
  EXPECT_TRUE(probe.events.empty());
}

TEST(Simulator, HandleGoesStaleAfterFire) {
  Simulator sim;
  Probe probe;
  TimerHandle h = sim.at(1.0, &probe, 0);
  sim.run_all();
  EXPECT_FALSE(sim.pending(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(probe.events.size(), 1u);
}

TEST(Simulator, ExecutedEventCountAccumulates) {
  Simulator sim;
  Probe probe;
  for (int i = 0; i < 17; ++i) sim.at(static_cast<double>(i), &probe, 0);
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 17u);
}

}  // namespace
}  // namespace gtrix
