// Differential battery for corruption-anchored windowed realignment.
//
// The tentpole contract (docs/scaling.md, "Realignment at scale"): corrupt
// cells no longer force full-trace recording. Realignment, the post-recovery
// skew window, the recovery-time scan and windowed conditions all replay
// from the corruption-anchored look-back (+/-window waves around the
// corruption wave plus the rolling tail), and the results are BIT-identical
// to full-trace recording whenever the look-back covers what is read.
// An under-sized look-back is a hard, mode-qualified error -- never a
// silently different number.
//
// Coverage here:
//  * every corrupt builtin variant (thm12, thm13, thm16, fig5 with the
//    Theorem 1.6 corruption plan) x recording modes {windowed, streaming}
//    x shards {1, 2, 4} x threads {1, 4}, against a full-trace baseline;
//  * JSONL byte-identity across every (shards, threads) combination;
//  * windowed conditions on a corrupted-and-realigned world vs full trace;
//  * a randomized (deterministically seeded) fuzz sweep over corruption
//    wave/fraction/density and look-back K: either bit-equal to full or a
//    loud coverage error, with both outcomes required to occur;
//  * the campaign-level under-sized-window hard error.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "scenario/registry.hpp"

namespace gtrix {
namespace {

/// Corrupt variants of the fault-story builtins. thm16 ships a corruption
/// plan; thm12/thm13/fig5 get the same Theorem 1.6 treatment layered onto
/// their fault models (corruption + clustered faults, corruption + random
/// faults, corruption + oscillatory start). Sweeps are trimmed and pulse
/// budgets extended so recovery (corrupt_wave + layers + 6) fits on every
/// variant at differential-test runtime.
Json corrupt_variant_doc(const std::string& name) {
  Json doc = builtin_scenario_doc(name);
  Json config = doc.at("config");
  config.set("self_stabilizing", true);
  Json sweep = Json::object();
  if (name == "thm12-worstcase-faults") {
    config.set("pulses", 40);
    sweep.set("clustered_faults.count", Json::parse("[0, 2]"));
  } else if (name == "thm13-random-faults") {
    config.set("pulses", 40);
    sweep.set("random_faults.probability", Json::parse("[0.0, 0.03125]"));
  } else if (name == "fig5-jump-ablation") {
    config.set("layers", 16);
    config.set("pulses", 40);
    sweep.set("jump_condition", Json::parse("[true, false]"));
  } else if (name == "thm16-stabilization") {
    sweep.set("layers", Json::parse("[6, 14]"));
  } else {
    throw std::logic_error("no corrupt variant for " + name);
  }
  doc.set("config", std::move(config));
  doc.set("sweep", std::move(sweep));
  if (!doc.contains("corrupt")) {
    Json corrupt = Json::object();
    corrupt.set("wave", 6.0);
    corrupt.set("fraction", 1.0);
    doc.set("corrupt", std::move(corrupt));
  }
  doc.set("name", name + std::string("-corrupt"));
  return doc;
}

/// Bitwise equality including NaN (same missing-pair markers in the same
/// places): NaN == NaN here, unlike operator==.
void expect_same_series(const std::vector<double>& a, const std::vector<double>& b,
                        const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      EXPECT_TRUE(std::isnan(a[i]) && std::isnan(b[i])) << "wave offset " << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "wave offset " << i;
    }
  }
}

/// Full bit-identity of everything a corrupt cell measures: realigned skew,
/// realignment stats, the recovery scan, and the engine-invariant counters
/// (logical events, not the shard-dependent raw execution count).
void expect_same_measurement(const ExperimentResult& full, const ExperimentResult& other,
                             const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(full.skew.max_intra, other.skew.max_intra);
  EXPECT_EQ(full.skew.max_inter, other.skew.max_inter);
  EXPECT_EQ(full.skew.local_skew, other.skew.local_skew);
  EXPECT_EQ(full.skew.global_skew, other.skew.global_skew);
  EXPECT_EQ(full.skew.intra_by_layer, other.skew.intra_by_layer);
  EXPECT_EQ(full.skew.inter_by_layer, other.skew.inter_by_layer);
  EXPECT_EQ(full.skew.spread_by_layer, other.skew.spread_by_layer);
  EXPECT_EQ(full.skew.sigma_lo, other.skew.sigma_lo);
  EXPECT_EQ(full.skew.sigma_hi, other.skew.sigma_hi);
  EXPECT_EQ(full.skew.pairs_checked, other.skew.pairs_checked);
  EXPECT_EQ(full.skew.pairs_skipped, other.skew.pairs_skipped);
  EXPECT_EQ(full.skew.deviations.count, other.skew.deviations.count);
  EXPECT_EQ(full.skew.deviations.mean, other.skew.deviations.mean);
  EXPECT_EQ(full.skew.deviations.p50, other.skew.deviations.p50);
  EXPECT_EQ(full.skew.deviations.p90, other.skew.deviations.p90);
  EXPECT_EQ(full.skew.deviations.p99, other.skew.deviations.p99);
  EXPECT_EQ(full.skew.deviations.exact, other.skew.deviations.exact);
  EXPECT_EQ(full.realign.nodes_shifted, other.realign.nodes_shifted);
  EXPECT_EQ(full.realign.max_abs_shift, other.realign.max_abs_shift);
  EXPECT_EQ(full.recovery.enabled, other.recovery.enabled);
  EXPECT_EQ(full.recovery.corrupt_wave, other.recovery.corrupt_wave);
  EXPECT_EQ(full.recovery.scan_hi, other.recovery.scan_hi);
  EXPECT_EQ(full.recovery.threshold, other.recovery.threshold);
  EXPECT_EQ(full.recovery.recovered, other.recovery.recovered);
  EXPECT_EQ(full.recovery.recovered_wave, other.recovery.recovered_wave);
  expect_same_series(full.recovery.local_by_wave, other.recovery.local_by_wave,
                     where + " recovery series");
  EXPECT_EQ(full.counters.iterations, other.counters.iterations);
  EXPECT_EQ(full.counters.watchdog_resets, other.counters.watchdog_resets);
  EXPECT_EQ(full.counters.messages_sent, other.counters.messages_sent);
  EXPECT_EQ(full.counters.messages_delivered, other.counters.messages_delivered);
  EXPECT_EQ(full.counters.events_executed - full.counters.delivery_events +
                full.counters.messages_delivered,
            other.counters.events_executed - other.counters.delivery_events +
                other.counters.messages_delivered);
  EXPECT_EQ(full.thm11_bound, other.thm11_bound);
  EXPECT_EQ(full.global_bound, other.global_bound);
  EXPECT_EQ(full.diameter, other.diameter);
}

ComponentSpec bounded_spec(const std::string& mode, int window) {
  ComponentSpec spec = ComponentSpec::of(mode);
  recording_registry().set_param(spec, "window", Json(window));
  return spec;
}

TEST(WindowedRealign, BitIdenticalToFullTraceOnEveryCorruptBuiltin) {
  const char* const kScenarios[] = {"thm12-worstcase-faults", "thm13-random-faults",
                                    "fig5-jump-ablation", "thm16-stabilization"};
  for (const char* name : kScenarios) {
    SCOPED_TRACE(name);
    const Scenario scenario = Scenario::from_json(corrupt_variant_doc(name));
    CampaignOptions baseline_options;
    baseline_options.threads = 2;
    const CampaignResult baseline = run_campaign(scenario, baseline_options);
    for (const CampaignCell& cell : baseline.cells) {
      ASSERT_TRUE(cell.corrupt.enabled);
      ASSERT_TRUE(cell.result.recovery.enabled) << cell.label;
    }
    for (const std::string mode : {"windowed", "streaming"}) {
      // 48 waves of look-back cover the corruption box and the recovery
      // tail on every variant (max layers 16 -> recovered wave <= 32,
      // scan/skew reads end well inside corrupt_wave + 48).
      CampaignOptions options;
      options.recording_override = bounded_spec(mode, 48);
      std::string reference_jsonl;
      for (const std::uint32_t shards : {1u, 2u, 4u}) {
        for (const unsigned threads : {1u, 4u}) {
          const std::string where =
              std::string(name) + " " + mode + " shards=" + std::to_string(shards) +
              " threads=" + std::to_string(threads);
          options.shards = shards;
          options.threads = threads;
          const CampaignResult bounded = run_campaign(scenario, options);
          ASSERT_EQ(baseline.cells.size(), bounded.cells.size());
          for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
            expect_same_measurement(baseline.cells[i].result, bounded.cells[i].result,
                                    where + " cell " + baseline.cells[i].label);
          }
          // Byte-identity of the emitted JSONL across every engine shape
          // running the same mode.
          const std::string jsonl = campaign_jsonl(bounded);
          if (reference_jsonl.empty()) {
            reference_jsonl = jsonl;
            EXPECT_NE(jsonl.find("\"recovery\""), std::string::npos) << where;
          } else {
            EXPECT_EQ(reference_jsonl, jsonl) << where;
          }
        }
      }
    }
  }
}

TEST(WindowedRealign, ConditionsMatchFullTraceAfterCorruptionAndRealignment) {
  // Direct world-level differential: corrupt, recover, realign, then check
  // the paper's conditions over a post-recovery window -- windowed
  // retention must reproduce the full-trace report field for field.
  const Json config_doc = Json::parse(R"({
    "columns": 8, "layers": 6, "pulses": 36, "seed": 17,
    "self_stabilizing": true
  })");
  CorruptPlan corrupt;
  corrupt.enabled = true;
  corrupt.wave = 8.0;
  corrupt.fraction = 1.0;

  const auto run_world = [&](World& world) {
    world.set_corruption_anchor(corrupt.wave);
    Rng rng(world.config().seed ^ 0xFEED);
    world.run_until(corrupt.wave * world.config().params.lambda);
    world.corrupt_fraction(corrupt.fraction, rng);
    world.run_to_completion();
    (void)world.realign_labels();
  };

  ExperimentConfig full_config = config_from_json(config_doc);
  World full_world(full_config);
  run_world(full_world);

  ExperimentConfig windowed_config = config_from_json(config_doc);
  // 14 waves: tight enough that waves between the corruption box and the
  // rolling tail exist only via the pin box -- the interesting regime.
  windowed_config.recording_spec = bounded_spec("windowed", 14);
  World windowed_world(windowed_config);
  run_world(windowed_world);

  const Sigma lo = 20;  // recovered wave: 8 + 6 layers + 6
  const Sigma hi = 30;
  const ConditionReport full = full_world.conditions_window(2, lo, hi);
  const ConditionReport windowed = windowed_world.conditions_window(2, lo, hi);
  EXPECT_GT(full.sc_checked, 0u);
  EXPECT_EQ(full.sc_checked, windowed.sc_checked);
  EXPECT_EQ(full.fc_checked, windowed.fc_checked);
  EXPECT_EQ(full.jc_checked, windowed.jc_checked);
  EXPECT_EQ(full.lemma_d2_checked, windowed.lemma_d2_checked);
  EXPECT_EQ(full.lemma_d3_checked, windowed.lemma_d3_checked);
  EXPECT_EQ(full.sc_violations, windowed.sc_violations);
  EXPECT_EQ(full.fc_violations, windowed.fc_violations);
  EXPECT_EQ(full.jc_violations, windowed.jc_violations);
  EXPECT_EQ(full.lemma_d2_violations, windowed.lemma_d2_violations);
  EXPECT_EQ(full.lemma_d3_violations, windowed.lemma_d3_violations);
  EXPECT_EQ(full.median_violations, windowed.median_violations);
}

TEST(WindowedRealign, FuzzedLookBackEitherMatchesFullOrFailsLoudly) {
  // Deterministically seeded sweep over corruption wave, corrupted
  // fraction, random-fault density, recording mode and look-back K. The
  // invariant under test is the SAFETY property of the bounded look-back:
  // whenever the bounded run returns numbers, they are bit-identical to
  // full-trace recording; when K is too small it throws a coverage error
  // naming the window -- it never silently diverges.
  Rng fuzz(0xC0FFEE);
  int matched = 0;
  int refused = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const std::int64_t wave = fuzz.uniform_int(5, 12);
    const double fraction = 0.25 + 0.25 * static_cast<double>(fuzz.uniform_int(0, 3));
    const double density = 0.02 * static_cast<double>(fuzz.uniform_int(0, 2));
    const int window = static_cast<int>(fuzz.uniform_int(6, 28));
    const std::string mode = (trial % 2 == 0) ? "windowed" : "streaming";
    const std::string where = "trial " + std::to_string(trial) + ": wave " +
                              std::to_string(wave) + " fraction " +
                              std::to_string(fraction) + " density " +
                              std::to_string(density) + " K " + std::to_string(window) +
                              " mode " + mode;
    SCOPED_TRACE(where);

    Json doc = Json::parse(R"({
      "columns": 8, "layers": 6, "pulses": 36,
      "self_stabilizing": true,
      "random_faults": {"probability": 0.0, "kinds": ["crash"]}
    })");
    Json config_obj = doc;
    config_obj.set("seed", 40 + trial);
    Json faults = config_obj.at("random_faults");
    faults.set("probability", density);
    config_obj.set("random_faults", std::move(faults));

    CorruptPlan corrupt;
    corrupt.enabled = true;
    corrupt.wave = static_cast<double>(wave);
    corrupt.fraction = fraction;

    const ExperimentConfig full_config = config_from_json(config_obj);
    const ExperimentResult full = run_cell(full_config, corrupt);

    ExperimentConfig bounded_config = config_from_json(config_obj);
    bounded_config.recording_spec = bounded_spec(mode, window);
    try {
      const ExperimentResult bounded = run_cell(bounded_config, corrupt);
      expect_same_measurement(full, bounded, where);
      ++matched;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("window"), std::string::npos) << e.what();
      ++refused;
    }
  }
  // The trial set must exercise both sides of the coverage boundary, or
  // the sweep proves nothing.
  EXPECT_GT(matched, 0);
  EXPECT_GT(refused, 0);
}

TEST(WindowedRealign, UnderSizedLookBackIsAHardModeQualifiedError) {
  const Scenario scenario = Scenario::from_json(Json::parse(R"({
    "name": "under-k",
    "config": {"columns": 6, "layers": 6, "pulses": 40, "self_stabilizing": true,
               "recording": {"kind": "streaming", "window": 8}},
    "corrupt": {"wave": 10.0, "fraction": 1.0}
  })"));
  CampaignOptions options;
  options.threads = 1;
  try {
    (void)run_campaign(scenario, options);
    FAIL() << "window 8 cannot cover the recovery tail of a 40-pulse corrupt cell";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("window"), std::string::npos) << what;
    EXPECT_NE(what.find("streaming"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace gtrix
