#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gtrix {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.5);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo = saw_lo || x == -2;
    saw_hi = saw_hi || x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(13);
  Rng a = parent.split("alpha");
  Rng b = parent.split("beta");
  int same = 0;
  for (int i = 0; i < 256; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitSameLabelDifferentDraws) {
  // split() consumes parent state, so two same-label children differ too.
  Rng parent(14);
  Rng a = parent.split("x");
  Rng b = parent.split("x");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, JumpChangesStream) {
  Rng a(15);
  Rng b(15);
  b.jump();
  int same = 0;
  for (int i = 0; i < 256; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Fnv1a64, StableValues) {
  // Reference values for the 64-bit FNV-1a of known strings.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("delays"), fnv1a64("clocks"));
}

TEST(Rng, UniformityChiSquared) {
  // 16 bins, 64k samples: chi-squared should be far below the catastrophic
  // threshold for a working generator.
  Rng rng(16);
  std::vector<int> bins(16, 0);
  const int n = 65536;
  for (int i = 0; i < n; ++i) {
    ++bins[static_cast<std::size_t>(rng.next_double() * 16.0)];
  }
  const double expected = n / 16.0;
  double chi2 = 0;
  for (int c : bins) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 60.0);  // df=15; 60 is far beyond the 0.999 quantile
}

}  // namespace
}  // namespace gtrix
