#include "metrics/recorder.hpp"

#include <gtest/gtest.h>

namespace gtrix {
namespace {

TEST(Recorder, RegisterAndQueryMeta) {
  Recorder rec;
  NodeMeta meta;
  meta.layer = 3;
  meta.column = 5;
  meta.faulty = true;
  rec.register_node(2, meta);
  EXPECT_EQ(rec.node_count(), 3u);
  EXPECT_EQ(rec.meta(2).layer, 3u);
  EXPECT_TRUE(rec.meta(2).faulty);
  EXPECT_FALSE(rec.meta(0).faulty);  // default-initialized gap
}

TEST(Recorder, PulseRoundTrip) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 5, 123.0);
  EXPECT_EQ(rec.pulse_time(0, 5), std::optional<SimTime>(123.0));
  EXPECT_FALSE(rec.pulse_time(0, 4).has_value());
  EXPECT_FALSE(rec.pulse_time(0, 6).has_value());
  EXPECT_FALSE(rec.pulse_time(1, 5).has_value());
}

TEST(Recorder, SigmaRangeTracksGlobalExtremes) {
  Recorder rec;
  rec.register_node(0, {});
  rec.register_node(1, {});
  EXPECT_EQ(rec.min_sigma(), Recorder::kInvalidSigma);
  rec.record_pulse(0, 3, 1.0);
  rec.record_pulse(1, 7, 2.0);
  rec.record_pulse(0, -2, 3.0);
  EXPECT_EQ(rec.min_sigma(), -2);
  EXPECT_EQ(rec.max_sigma(), 7);
}

TEST(Recorder, GapsAreMissing) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 1, 10.0);
  rec.record_pulse(0, 4, 40.0);
  EXPECT_TRUE(rec.pulse_time(0, 1).has_value());
  EXPECT_FALSE(rec.pulse_time(0, 2).has_value());
  EXPECT_FALSE(rec.pulse_time(0, 3).has_value());
  EXPECT_TRUE(rec.pulse_time(0, 4).has_value());
}

TEST(Recorder, BackwardsSigmaPrepends) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 10, 100.0);
  rec.record_pulse(0, 7, 70.0);  // earlier wave recorded later
  EXPECT_EQ(rec.pulse_time(0, 7), std::optional<SimTime>(70.0));
  EXPECT_EQ(rec.pulse_time(0, 10), std::optional<SimTime>(100.0));
  EXPECT_FALSE(rec.pulse_time(0, 8).has_value());
}

TEST(Recorder, OverwriteKeepsLatest) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 2, 20.0);
  rec.record_pulse(0, 2, 21.0);
  EXPECT_EQ(rec.pulse_time(0, 2), std::optional<SimTime>(21.0));
}

TEST(Recorder, SteadyFromSkipsWarmupPulses) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 1, 1.0);
  rec.record_pulse(0, 3, 3.0);  // gap at 2
  rec.record_pulse(0, 4, 4.0);
  rec.record_pulse(0, 5, 5.0);
  EXPECT_EQ(rec.steady_from(0, 0), 1);
  EXPECT_EQ(rec.steady_from(0, 1), 3);  // gaps don't count
  EXPECT_EQ(rec.steady_from(0, 2), 4);
  EXPECT_EQ(rec.steady_from(0, 4), Recorder::kInvalidSigma);
}

TEST(Recorder, LastRecorded) {
  Recorder rec;
  rec.register_node(0, {});
  EXPECT_EQ(rec.last_recorded(0), Recorder::kInvalidSigma);
  rec.record_pulse(0, 2, 1.0);
  rec.record_pulse(0, 6, 2.0);
  EXPECT_EQ(rec.last_recorded(0), 6);
}

TEST(Recorder, IterationRecordsKeptInOrder) {
  Recorder rec;
  rec.register_node(0, {});
  IterationRecord a;
  a.sigma = 1;
  a.correction = 1.5;
  IterationRecord b;
  b.sigma = 2;
  b.correction = -0.5;
  rec.record_iteration(0, a);
  rec.record_iteration(0, b);
  const auto& records = rec.iterations(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sigma, 1);
  EXPECT_DOUBLE_EQ(records[1].correction, -0.5);
}

TEST(Recorder, PulseCountAccumulates) {
  Recorder rec;
  rec.register_node(0, {});
  rec.register_node(1, {});
  rec.record_pulse(0, 1, 1.0);
  rec.record_pulse(1, 1, 1.0);
  rec.record_pulse(0, 2, 2.0);
  EXPECT_EQ(rec.pulse_count(), 3u);
}

TEST(Recorder, UnregisteredNodeThrows) {
  Recorder rec;
  EXPECT_THROW(rec.record_pulse(0, 1, 1.0), std::logic_error);
  IterationRecord r;
  EXPECT_THROW(rec.record_iteration(3, r), std::logic_error);
}

// --- memory-bounded recording modes ------------------------------------------

TEST(Recorder, WindowedModeEvictsBeyondTheWindow) {
  Recorder rec;
  RecordingOptions options;
  options.mode = RecordingMode::kWindowed;
  options.window = 4;
  rec.configure(options);
  rec.register_node(0, {});
  for (Sigma s = 0; s < 10; ++s) {
    rec.record_pulse(0, s, static_cast<double>(s) * 10.0);
    IterationRecord it;
    it.sigma = s;
    rec.record_iteration(0, it);
  }
  // Waves 6..9 retained, 0..5 evicted.
  EXPECT_FALSE(rec.pulse_time(0, 5).has_value());
  EXPECT_EQ(rec.pulse_time(0, 6), std::optional<SimTime>(60.0));
  EXPECT_EQ(rec.pulse_time(0, 9), std::optional<SimTime>(90.0));
  ASSERT_EQ(rec.iterations(0).size(), 4u);
  EXPECT_EQ(rec.iterations(0).front().sigma, 6);
  EXPECT_EQ(rec.iterations_dropped(0), 6u);
  // Global envelope still spans the whole run.
  EXPECT_EQ(rec.min_sigma(), 0);
  EXPECT_EQ(rec.max_sigma(), 9);
  EXPECT_EQ(rec.pulse_count(), 10u);
}

TEST(Recorder, StreamingModeKeepsNoPerWaveState) {
  Recorder rec;
  RecordingOptions options;
  options.mode = RecordingMode::kStreaming;
  rec.configure(options);
  rec.register_node(0, {});
  rec.record_pulse(0, 3, 30.0);
  IterationRecord it;
  it.sigma = 3;
  rec.record_iteration(0, it);
  EXPECT_FALSE(rec.pulse_time(0, 3).has_value());
  EXPECT_TRUE(rec.iterations(0).empty());
  // ...but the run envelope and counts survive for default_window().
  EXPECT_EQ(rec.min_sigma(), 3);
  EXPECT_EQ(rec.max_sigma(), 3);
  EXPECT_EQ(rec.pulse_count(), 1u);
}

TEST(Recorder, ConfigureAfterRecordingThrows) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 0, 0.0);
  RecordingOptions options;
  options.mode = RecordingMode::kStreaming;
  EXPECT_THROW(rec.configure(options), std::logic_error);
}

TEST(Recorder, RegisterNodeIdOverflowThrows) {
  Recorder rec;
  // The largest id would make the table size wrap past uint32.
  EXPECT_THROW(rec.register_node(std::numeric_limits<std::uint32_t>::max(), {}),
               std::logic_error);
}

TEST(Recorder, RecordingModeNames) {
  EXPECT_EQ(to_string(RecordingMode::kFull), "full");
  EXPECT_EQ(to_string(RecordingMode::kWindowed), "windowed");
  EXPECT_EQ(to_string(RecordingMode::kStreaming), "streaming");
}

}  // namespace
}  // namespace gtrix
