// End-to-end smoke test: a small fault-free grid runs to completion, every
// correct node pulses every wave, and the measured local skew respects the
// Theorem 1.1 bound.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

TEST(Smoke, FaultFreeIdealInput) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 12;
  config.seed = 1;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
  EXPECT_GT(result.counters.iterations, 0u);
}

TEST(Smoke, FaultFreeLineInput) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 14;
  config.layer0 = Layer0Mode::kLinePropagation;
  config.seed = 2;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.skew.pairs_checked, 0u);
  EXPECT_LE(result.skew.max_intra, result.thm11_bound);
}

}  // namespace
}  // namespace gtrix
