// Perf-harness tests: the optimized engine (calendar queue, batched
// broadcasts, SoA arena, cached metrics, single-locate loop) must be
// bit-identical to the reference engine (the pre-refactor
// hot path) on real scenarios, including 1-vs-N-thread campaign byte
// identity over the new engine.
#include "runner/perf.hpp"

#include <gtest/gtest.h>

#include "runner/campaign.hpp"
#include "scenario/registry.hpp"

namespace gtrix {
namespace {

TEST(Perf, EnginesProduceBitIdenticalSkewOnQuickstartGrid) {
  const PerfScenarioReport report =
      check_perf_identity(builtin_scenario("quickstart-grid"));
  EXPECT_TRUE(report.skew_identical);
  EXPECT_EQ(report.cells, 8u);
  // Work normalization: logical events are engine-invariant even though the
  // executed event counts may differ under broadcast batching.
  EXPECT_EQ(report.reference.logical_events, report.optimized.logical_events);
  EXPECT_GT(report.optimized.logical_events, 0u);
}

TEST(Perf, EnginesProduceBitIdenticalSkewUnderCorruption) {
  // thm16-stabilization runs the mid-run corruption + realignment path;
  // the engines must stay identical through Rng-driven corruption too.
  // Shrink the scenario (one cell) to keep the test fast.
  Json doc = builtin_scenario_doc("thm16-stabilization");
  Json sweep = Json::object();
  Json layers = Json::array();
  layers.push_back(static_cast<std::int64_t>(6));
  sweep.set("layers", std::move(layers));
  Json seeds = Json::object();
  seeds.set("from", static_cast<std::int64_t>(100));
  seeds.set("count", static_cast<std::int64_t>(1));
  sweep.set("seed", std::move(seeds));
  doc.set("sweep", std::move(sweep));
  const PerfScenarioReport report = check_perf_identity(Scenario::from_json(doc));
  EXPECT_TRUE(report.skew_identical);
  EXPECT_EQ(report.cells, 1u);
}

TEST(Perf, EveryEngineGateIsIndividuallyIdentical) {
  // Flip each EngineOptions gate on its own against the full reference:
  // any single optimization must already be behaviour-preserving (catches
  // a gate "working" only because another gate masks its divergence).
  const auto cells = builtin_scenario("quickstart-grid").cells();
  const ExperimentConfig& config = cells.front().config;
  const CorruptPlan& corrupt = cells.front().corrupt;
  const std::string baseline =
      skew_digest(run_cell(config, corrupt, EngineOptions::reference()));

  for (int gate = 0; gate < 5; ++gate) {
    EngineOptions engine = EngineOptions::reference();
    switch (gate) {
      case 0: engine.scheduler = SchedulerKind::kCalendar; break;
      case 1: engine.batched_broadcast = true; break;
      case 2: engine.soa_arena = true; break;
      case 3: engine.cached_metrics = true; break;
      case 4: engine.single_locate_loop = true; break;
    }
    EXPECT_EQ(skew_digest(run_cell(config, corrupt, engine)), baseline)
        << "gate " << gate << " diverged";
  }
}

TEST(Perf, SweepOverNewEngineIsThreadCountInvariant) {
  // 1-vs-N-thread byte identity over the optimized engine: the campaign
  // JSONL (which serializes skew AND counters) must not depend on worker
  // count. This is the satellite guarantee that parallel sweeps remain
  // deterministic on the calendar-queue engine.
  const Scenario scenario = builtin_scenario("quickstart-grid");
  const CampaignResult one = run_campaign(scenario, CampaignOptions{.threads = 1, .recording_override = {}});
  const CampaignResult four = run_campaign(scenario, CampaignOptions{.threads = 4, .recording_override = {}});
  EXPECT_EQ(campaign_jsonl(one), campaign_jsonl(four));
}

TEST(Perf, ReportJsonCarriesSpeedupAndIdentity) {
  PerfScenarioReport report = run_perf_scenario(builtin_scenario("torus-smoke"), 1);
  EXPECT_TRUE(report.skew_identical);
  EXPECT_GT(report.optimized.events_per_sec, 0.0);
  EXPECT_GT(report.reference.events_per_sec, 0.0);
  EXPECT_GT(report.speedup, 0.0);

  const Json doc = perf_report_json({report});
  EXPECT_EQ(doc.at("bench").as_string(), "bench_perf");
  EXPECT_TRUE(doc.at("all_skew_identical").as_bool());
  const Json& entry = doc.at("scenarios").as_array().front();
  EXPECT_EQ(entry.at("scenario").as_string(), "torus-smoke");
  EXPECT_EQ(entry.at("reference").at("logical_events").as_int(),
            entry.at("optimized").at("logical_events").as_int());
}

}  // namespace
}  // namespace gtrix
