// Broad randomized property sweep: for a grid of parameter combinations
// and seeds, every run must satisfy the paper's invariants simultaneously:
//   * Theorem 1.1 / Corollary 4.24 skew bounds,
//   * SC/FC/JC + Lemma D.2/D.3 + median sticking (Cor 4.29),
//   * steady pulses strictly periodic (static model),
//   * deterministic reproduction.
// This is the widest net in the suite; anything the targeted tests miss
// tends to surface here first.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::uint32_t columns;
  std::uint32_t layers;
  double u;
  double theta;
  Layer0Mode layer0;
  DelayModelKind delays;
  ClockModelKind clocks;
  bool with_fault;
};

class PropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PropertySweep, AllInvariantsHold) {
  const SweepCase& c = GetParam();
  ExperimentConfig config;
  config.columns = c.columns;
  config.layers = c.layers;
  config.pulses = 20;
  config.seed = c.seed;
  config.params = Params::with(1000.0, c.u, c.theta);
  config.layer0 = c.layer0;
  config.delay_kind = c.delays;
  config.delay_split_column = c.columns / 2;
  config.clock_model = c.clocks;
  if (c.with_fault) {
    config.faults = {{c.columns / 2, c.layers / 2, FaultSpec::static_offset(120.0)}};
  }
  ASSERT_TRUE(config.params.valid_for(c.columns - 1, 1.0))
      << config.params.validate(c.columns - 1, 1.0);

  World world(config);
  world.run_to_completion();

  // Skew bounds.
  const SkewReport skew = world.skew();
  ASSERT_GT(skew.pairs_checked, 0u);
  const std::uint32_t diameter = world.grid().base().diameter();
  const double bound = c.with_fault ? config.params.thm12_bound(diameter, 1)
                                    : config.params.thm11_bound(diameter);
  EXPECT_LE(skew.max_intra, bound);
  EXPECT_LE(skew.global_skew, config.params.global_skew_bound(diameter) *
                                  (c.with_fault ? 2.0 : 1.0));

  // Conditions.
  const ConditionReport conditions = world.conditions(5);
  EXPECT_GT(conditions.sc_checked, 0u);
  EXPECT_TRUE(conditions.ok()) << conditions.summary() << "\n"
                               << (conditions.samples.empty() ? ""
                                                              : conditions.samples[0]);

  // Exact periodicity of steady pulses (static model). Compare consecutive
  // non-late iteration records only: under line input the startup cascade
  // at deep layers can exceed a fixed warmup, and late (guard-fired) pulses
  // are legitimately aperiodic.
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < world.grid().node_count(); g += 7) {  // sample nodes
    if (world.is_faulty(g) || world.grid().layer_of(g) == 0) continue;
    const auto& records = rec.iterations(g);
    auto complete = [](const IterationRecord& r) {
      // Decision-time completeness: slot_seen can be back-filled by
      // absorbed late messages, so use the recorded decision flags.
      if (r.late || r.own_missing || r.max_missing) return false;
      for (std::uint8_t s = 0; s < r.slot_count; ++s) {
        if (!r.slot_seen[s]) return false;  // partial group (run tail)
      }
      return true;
    };
    // Skip the last several records too: tail disturbances (the source
    // stopping) cascade from predecessors whose own flags this node cannot
    // observe, and under line input the cascade spans several waves.
    for (std::size_t i = 6; i + 9 < records.size(); ++i) {
      const auto& a = records[i];
      const auto& b = records[i + 1];
      if (!complete(a) || !complete(b) || b.sigma != a.sigma + 1) continue;
      ASSERT_NEAR(b.pulse_time - a.pulse_time, config.params.lambda, 1e-6)
          << world.grid().label(g) << " sigma " << a.sigma;
    }
  }

  // Determinism.
  const ExperimentResult again = run_experiment(config);
  EXPECT_DOUBLE_EQ(again.skew.max_intra, skew.max_intra);
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 100;
  for (const auto& [u, theta] : {std::pair{10.0, 1.0005}, {4.0, 1.0002}, {18.0, 1.0008}}) {
    for (const Layer0Mode layer0 : {Layer0Mode::kIdealJitter, Layer0Mode::kLinePropagation}) {
      for (const bool fault : {false, true}) {
        SweepCase c;
        c.seed = ++seed;
        c.columns = 9 + static_cast<std::uint32_t>(seed % 5);
        c.layers = c.columns + 2;
        c.u = u;
        c.theta = theta;
        c.layer0 = layer0;
        c.delays = seed % 2 == 0 ? DelayModelKind::kUniformRandom
                                 : DelayModelKind::kColumnSplit;
        c.clocks = seed % 3 == 0 ? ClockModelKind::kAlternating
                                 : ClockModelKind::kRandomStatic;
        c.with_fault = fault;
        cases.push_back(c);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, PropertySweep, ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace gtrix
