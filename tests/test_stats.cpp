#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace gtrix {
namespace {

TEST(Summary, EmptyState) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(1);
  Summary all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Quantile, MedianOdd) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Quantile, MedianEvenInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> xs = {4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 8.0);
}

TEST(Quantile, EmptyIsNaN) {
  std::vector<double> xs;
  EXPECT_TRUE(std::isnan(quantile(xs, 0.5)));
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(P2QuantileTest, EmptyIsNaN) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  EXPECT_TRUE(q.empty());
}

TEST(P2QuantileTest, ExactForFirstFiveObservations) {
  P2Quantile q(0.5);
  const double xs[] = {9.0, 1.0, 5.0, 3.0, 7.0};
  std::vector<double> seen;
  for (const double x : xs) {
    q.add(x);
    seen.push_back(x);
    EXPECT_DOUBLE_EQ(q.value(), quantile(seen, 0.5)) << "after " << seen.size();
  }
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
}

TEST(P2QuantileTest, TracksUniformStreamQuantiles) {
  // Deterministic pseudo-uniform stream; P2 should land within ~1% of the
  // exact quantile for smooth distributions.
  for (const double target : {0.5, 0.9, 0.99}) {
    P2Quantile q(target);
    std::vector<double> all;
    std::uint64_t state = 88172645463325252ULL;
    for (int i = 0; i < 20000; ++i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      const double x = static_cast<double>(state % 1000000ULL) / 1000000.0;
      q.add(x);
      all.push_back(x);
    }
    EXPECT_NEAR(q.value(), quantile(all, target), 0.01) << "q=" << target;
  }
}

TEST(P2QuantileTest, DeterministicForAGivenSequence) {
  P2Quantile a(0.9);
  P2Quantile b(0.9);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.count(), 1000u);
}

TEST(P2QuantileTest, MonotoneAcrossTargets) {
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  P2Quantile p99(0.99);
  std::uint64_t state = 11400714819323198485ULL;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = static_cast<double>(state >> 40);
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_LE(p50.value(), p90.value());
  EXPECT_LE(p90.value(), p99.value());
}

TEST(LogQuantileSketchTest, EmptyIsNaN) {
  LogQuantileSketch sketch;
  EXPECT_TRUE(std::isnan(sketch.quantile(0.5)));
  EXPECT_TRUE(sketch.empty());
}

TEST(LogQuantileSketchTest, GuaranteedRelativeErrorOnUniformStream) {
  LogQuantileSketch sketch(0.01);
  std::vector<double> all;
  std::uint64_t state = 88172645463325252ULL;
  for (int i = 0; i < 50000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double x = 0.01 + static_cast<double>(state % 1000000ULL) / 1000.0;  // 0.01..1000
    sketch.add(x);
    all.push_back(x);
  }
  for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = quantile(all, q);
    EXPECT_NEAR(sketch.quantile(q), exact, 0.015 * exact + 1e-6) << "q=" << q;
  }
}

TEST(LogQuantileSketchTest, PointMassMixtureStaysAccurate) {
  // The distribution shape that wedges P-squared markers: a large point
  // mass at a small value plus a sparse far tail (Fig. 5's deviations).
  LogQuantileSketch sketch(0.01);
  std::vector<double> all;
  for (int i = 0; i < 9000; ++i) {
    sketch.add(0.5);
    all.push_back(0.5);
  }
  for (int i = 0; i < 1000; ++i) {
    const double x = 100.0 + static_cast<double>(i % 50);
    sketch.add(x);
    all.push_back(x);
  }
  EXPECT_NEAR(sketch.quantile(0.5), 0.5, 0.02 * 0.5);
  const double exact_p95 = quantile(all, 0.95);
  EXPECT_NEAR(sketch.quantile(0.95), exact_p95, 0.02 * exact_p95);
}

TEST(LogQuantileSketchTest, ZerosAndExtremesAreHandled) {
  LogQuantileSketch sketch;
  for (int i = 0; i < 10; ++i) sketch.add(0.0);
  sketch.add(1e15);  // beyond the top bin: saturates, never lost
  EXPECT_EQ(sketch.count(), 11u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_GT(sketch.quantile(1.0), 1e11);
  EXPECT_GT(sketch.memory_bytes(), 0u);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineHasHighR2) {
  Rng rng(2);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 + 0.5 * i + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFitTest, DegenerateInputs) {
  std::vector<double> one = {1.0};
  EXPECT_EQ(fit_linear(one, one).slope, 0.0);
  std::vector<double> same_x = {2.0, 2.0, 2.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(fit_linear(same_x, ys).slope, 0.0);
}

TEST(LinearFitTest, Log2Fit) {
  // y = 1 + 3 log2(x)
  std::vector<double> xs = {2, 4, 8, 16, 32};
  std::vector<double> ys = {4, 7, 10, 13, 16};
  const LinearFit fit = fit_log2(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);    // bin 0
  h.add(5.0);    // bin 2
  h.add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace gtrix
