#include "core/correction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace gtrix {
namespace {

const Params kParams = Params::with(1000.0, 10.0, 1.0005);

/// Brute-force reference for min_{s in N} max{a + 4sk, b - 4sk}.
double brute_force_min_max(double a, double b, double kappa) {
  double best = std::numeric_limits<double>::infinity();
  for (std::int64_t s = 0; s < 100000; ++s) {
    const double shift = 4.0 * static_cast<double>(s) * kappa;
    best = std::min(best, std::max(a + shift, b - shift));
    if (a + shift > best) break;  // increasing term dominates from here on
  }
  return best;
}

TEST(DiscreteMinMax, MatchesBruteForceOnRandomInputs) {
  Rng rng(1);
  const double kappa = kParams.kappa();
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-5000.0, 5000.0);
    const double b = a + rng.uniform(0.0, 10000.0);
    const double got = discrete_min_max(a, b, kappa);
    const double want = brute_force_min_max(a, b, kappa);
    ASSERT_NEAR(got, want, 1e-9) << "a=" << a << " b=" << b;
  }
}

TEST(DiscreteMinMax, SZeroWhenAlreadyBalanced) {
  std::int64_t s = -1;
  const double v = discrete_min_max(-1.0, 1.0, 10.0, &s);
  EXPECT_EQ(s, 0);
  EXPECT_DOUBLE_EQ(v, 1.0);  // max(-1, 1) at s=0
}

TEST(DiscreteMinMax, LargeGapPicksLargeS) {
  const double kappa = 10.0;
  std::int64_t s = -1;
  (void)discrete_min_max(-1000.0, 1000.0, kappa, &s);
  // Continuous optimum at (b-a)/(8k) = 25.
  EXPECT_NEAR(static_cast<double>(s), 25.0, 1.0);
}

TEST(DiscreteMinMax, RequiresOrderedInputs) {
  EXPECT_THROW((void)discrete_min_max(1.0, -1.0, 10.0), std::logic_error);
  EXPECT_THROW((void)discrete_min_max(0.0, 1.0, 0.0), std::logic_error);
}

TEST(ComputeCorrection, BalancedInputsGiveSmallC) {
  // All receptions simultaneous: Delta = -kappa/2 < 0 -> negative branch,
  // but own == min means C = min(3kappa/2, 0)... = 0.
  const Correction c = compute_correction(100.0, 100.0, 100.0, kParams);
  EXPECT_EQ(c.branch, CorrectionBranch::kNegativeJump);
  EXPECT_DOUBLE_EQ(c.value, 0.0);
}

TEST(ComputeCorrection, WithinBandUsesDelta) {
  // Choose inputs so Delta lands in (0, theta kappa): own slightly late.
  const double kappa = kParams.kappa();
  const double own = 100.0;
  const double lo = own - 0.8 * kappa;  // h_min
  const double hi = own - 0.5 * kappa;  // h_max <= own
  const Correction c = compute_correction(own, lo, hi, kParams);
  EXPECT_EQ(c.branch, CorrectionBranch::kWithin);
  EXPECT_DOUBLE_EQ(c.value, c.delta);
  EXPECT_GE(c.value, 0.0);
  EXPECT_LE(c.value, kParams.theta * kappa);
}

TEST(ComputeCorrection, OwnFarAheadDelaysPulse) {
  // Own reception much earlier than both neighbours: node must wait
  // (negative C), damped kappa short of the earliest neighbour.
  const double kappa = kParams.kappa();
  const double own = 100.0;
  const double nb = own + 10.0 * kappa;
  const Correction c = compute_correction(own, nb, nb + 1.0, kParams);
  EXPECT_EQ(c.branch, CorrectionBranch::kNegativeJump);
  EXPECT_DOUBLE_EQ(c.value, own - nb + 1.5 * kappa);
  EXPECT_LT(c.value, 0.0);
}

TEST(ComputeCorrection, OwnFarBehindSpeedsUp) {
  // Own reception much later than both neighbours: big positive jump,
  // damped kappa short of the latest neighbour.
  const double kappa = kParams.kappa();
  const double own = 100.0 + 10.0 * kappa;
  const Correction c = compute_correction(own, 100.0, 101.0, kParams);
  EXPECT_EQ(c.branch, CorrectionBranch::kPositiveJump);
  EXPECT_DOUBLE_EQ(c.value, own - 101.0 - 1.5 * kappa);
  EXPECT_GT(c.value, kParams.theta * kappa);
}

TEST(ComputeCorrection, NegativeClampNeverPositive) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double own = rng.uniform(0.0, 1000.0);
    const double lo = own + rng.uniform(0.0, 500.0);  // own earliest
    const double hi = lo + rng.uniform(0.0, 100.0);
    const Correction c = compute_correction(own, lo, hi, kParams);
    if (c.branch == CorrectionBranch::kNegativeJump) {
      ASSERT_LE(c.value, 0.0);
    }
  }
}

TEST(ComputeCorrection, PositiveClampNeverBelowThetaKappa) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double hi = rng.uniform(0.0, 1000.0);
    const double lo = hi - rng.uniform(0.0, 100.0);
    const double own = hi + rng.uniform(0.0, 500.0);  // own latest
    const Correction c = compute_correction(own, lo, hi, kParams);
    if (c.branch == CorrectionBranch::kPositiveJump) {
      ASSERT_GE(c.value, kParams.theta * kParams.kappa() - 1e-12);
    }
  }
}

/// Lemma D.2 (local form): C <= Lambda - d for any inputs whose spread is
/// bounded by a plausible skew (here: anything below (Lambda - d) / 2).
TEST(ComputeCorrection, LemmaD2OnPlausibleInputs) {
  Rng rng(4);
  const double bound = (kParams.lambda - kParams.d) / 2.0;
  for (int i = 0; i < 2000; ++i) {
    const double own = rng.uniform(0.0, 10000.0);
    const double x = own + rng.uniform(-bound, bound);
    const double y = own + rng.uniform(-bound, bound);
    const Correction c =
        compute_correction(own, std::min(x, y), std::max(x, y), kParams);
    ASSERT_LE(c.value, kParams.lambda - kParams.d + 1e-9);
  }
}

/// Median sticking (Lemmas 4.27/4.28 computational core): the pulse offset
/// H_own - C stays within [H_min - 3k/2, H_max + 3k/2].
TEST(ComputeCorrection, SticksNearMedianWindow) {
  Rng rng(5);
  const double kappa = kParams.kappa();
  for (int i = 0; i < 2000; ++i) {
    const double own = rng.uniform(0.0, 10000.0);
    const double x = own + rng.uniform(-800.0, 800.0);
    const double y = own + rng.uniform(-800.0, 800.0);
    const double lo = std::min(x, y);
    const double hi = std::max(x, y);
    const Correction c = compute_correction(own, lo, hi, kParams);
    const double virtual_pulse = own - c.value;  // pulse minus (Lambda - d)
    ASSERT_GE(virtual_pulse, lo - 1.5 * kappa - 1e-9);
    ASSERT_LE(virtual_pulse, hi + 1.5 * kappa + 1e-9);
  }
}

TEST(ComputeCorrection, JumpConditionOffFollowsRawDelta) {
  const double kappa = kParams.kappa();
  const double own = 100.0;
  const double nb = own + 10.0 * kappa;
  const Correction damped = compute_correction(own, nb, nb + 1.0, kParams, true);
  const Correction raw = compute_correction(own, nb, nb + 1.0, kParams, false);
  EXPECT_DOUBLE_EQ(raw.value, raw.delta);
  EXPECT_LT(raw.value, damped.value);  // raw overshoots further negative
}

TEST(ComputeCorrection, RejectsNonFiniteInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)compute_correction(inf, 0.0, 1.0, kParams), std::logic_error);
  EXPECT_THROW((void)compute_correction(0.0, 0.0, inf, kParams), std::logic_error);
}

/// Property sweep: for all inputs, exactly one of the three branch
/// conditions applies and the reported branch matches Delta's position.
class CorrectionBranchSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorrectionBranchSweep, BranchMatchesDelta) {
  Rng rng(GetParam());
  const double tk = kParams.theta * kParams.kappa();
  for (int i = 0; i < 1000; ++i) {
    const double own = rng.uniform(0.0, 1000.0);
    const double x = own + rng.uniform(-600.0, 600.0);
    const double y = own + rng.uniform(-600.0, 600.0);
    const Correction c =
        compute_correction(own, std::min(x, y), std::max(x, y), kParams);
    if (c.delta < 0.0) {
      ASSERT_EQ(c.branch, CorrectionBranch::kNegativeJump);
    } else if (c.delta > tk) {
      ASSERT_EQ(c.branch, CorrectionBranch::kPositiveJump);
    } else {
      ASSERT_EQ(c.branch, CorrectionBranch::kWithin);
      ASSERT_DOUBLE_EQ(c.value, c.delta);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrectionBranchSweep,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace gtrix
