#!/usr/bin/env python3
"""Crash-restart test for gtrix_serve: kill -9 mid-queue, restart, and
require that completed jobs are neither lost nor re-run.

Procedure:
  1. spool two jobs (job-a small, job-b larger so the kill lands inside it);
  2. run `gtrix_serve --once`, watch the event stream, SIGKILL the process
     right after job-a's job_done event;
  3. record job-a's result bytes and mtimes;
  4. restart `gtrix_serve --once`: it must emit job_skipped (already
     complete) for job-a, leave its result files byte- and mtime-untouched,
     and run job-b to completion (resuming from job-b's checkpoints);
  5. compare both jobs' results against an uninterrupted serve over the
     same jobs in a second spool -- bytes must match exactly;
  6. submit a job over the stdin protocol and check it spools and runs.

Usage: tests/serve_restart_test.py GTRIX_SERVE_BINARY
"""
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

JOB_A = {
    "name": "job-a",
    "config": {"columns": 6, "layers": 6, "pulses": 10},
    "sweep": {"seed": [1, 2]},
}
JOB_B = {
    "name": "job-b",
    "config": {"columns": 10, "layers": 16, "pulses": 30},
    "sweep": {"seed": [1, 2, 3, 4]},
}


def fail(msg):
    print(f"serve_restart_test: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def spool_jobs(spool):
    (spool / "jobs").mkdir(parents=True, exist_ok=True)
    (spool / "jobs" / "job-a.json").write_text(json.dumps(JOB_A))
    (spool / "jobs" / "job-b.json").write_text(json.dumps(JOB_B))


def serve_once(binary, spool, extra=()):
    proc = subprocess.run([binary, f"--spool={spool}", "--once", "--threads=2",
                           "--checkpoint-every=4000", *extra],
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"serve --once exited {proc.returncode}:\n{proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line]


def events_of(events, kind):
    return [e for e in events if e.get("event") == kind]


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = argv[1]

    with tempfile.TemporaryDirectory(prefix="gtrix_serve_restart_") as tmp:
        tmp = pathlib.Path(tmp)
        spool = tmp / "spool"
        spool_jobs(spool)

        # Uninterrupted reference serve in its own spool.
        ref_spool = tmp / "ref"
        spool_jobs(ref_spool)
        ref_events = serve_once(binary, ref_spool)
        if len(events_of(ref_events, "job_done")) != 2:
            fail(f"reference serve did not complete both jobs: {ref_events}")

        # Run 1: kill -9 right after job-a completes (jobs run in name
        # order, so job-b is in flight or about to start).
        proc = subprocess.Popen([binary, f"--spool={spool}", "--once",
                                 "--threads=2", "--checkpoint-every=4000"],
                                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                                text=True)
        saw_a_done = False
        start = time.monotonic()
        for line in proc.stdout:
            event = json.loads(line)
            if event.get("event") == "job_done" and event.get("job") == "job-a":
                saw_a_done = True
                break
            if time.monotonic() - start > 300:
                break
        if not saw_a_done:
            proc.kill()
            fail("never saw job_done for job-a")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        results = spool / "results"
        a_jsonl = results / "job-a.jsonl"
        a_summary = results / "job-a.summary.json"
        if not a_jsonl.exists() or not a_summary.exists():
            fail("job-a results missing after kill")
        a_bytes = a_jsonl.read_bytes()
        a_mtimes = (a_jsonl.stat().st_mtime_ns, a_summary.stat().st_mtime_ns)
        if (results / "job-b.summary.json").exists():
            print("serve_restart_test: note: job-b finished before the kill; "
                  "restart still must not re-run it")

        # Run 2: restart. job-a must be skipped untouched; job-b must finish.
        events = serve_once(binary, spool)
        skips = [e for e in events_of(events, "job_skipped")
                 if e.get("job") == "job-a"]
        if not skips:
            fail(f"restart did not skip completed job-a: {events}")
        if "complete" not in skips[0].get("reason", ""):
            fail(f"unexpected skip reason: {skips[0]}")
        if events_of(events, "job_start") and any(
                e.get("job") == "job-a" for e in events_of(events, "job_start")):
            fail("restart re-ran completed job-a")
        if a_jsonl.read_bytes() != a_bytes:
            fail("restart changed job-a's result bytes")
        if (a_jsonl.stat().st_mtime_ns, a_summary.stat().st_mtime_ns) != a_mtimes:
            fail("restart rewrote job-a's result files")
        if not (results / "job-b.summary.json").exists():
            fail("restart did not complete job-b")

        # Byte-identity of both results vs the uninterrupted reference.
        for job in ("job-a", "job-b"):
            got = (results / f"{job}.jsonl").read_bytes()
            want = (ref_spool / "results" / f"{job}.jsonl").read_bytes()
            if got != want:
                fail(f"{job}: killed-and-restarted serve differs from the "
                     f"uninterrupted reference")
        print("serve_restart_test: kill -9 restart: no loss, no re-run, "
              "byte-identical results")

        # Third pass over a fully served spool: everything skips, nothing runs.
        events = serve_once(binary, spool)
        if events_of(events, "job_start") or events_of(events, "job_done"):
            fail(f"idle restart still ran jobs: {events}")

        # stdin protocol: submit a job as a JSON line; it must spool and run.
        stdin_spool = tmp / "stdin-spool"
        job = {"name": "job-c", "scenario": JOB_A | {"name": "job-c"}}
        proc = subprocess.run([binary, f"--spool={stdin_spool}", "--stdin",
                               "--threads=2", "--checkpoint-every=4000"],
                              input=json.dumps(job) + "\n",
                              capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"stdin serve exited {proc.returncode}:\n{proc.stderr}")
        events = [json.loads(line) for line in proc.stdout.splitlines() if line]
        if not any(e.get("event") == "job_done" and e.get("job") == "job-c"
                   for e in events):
            fail(f"stdin-submitted job never completed: {events}")
        if not (stdin_spool / "jobs" / "job-c.json").exists():
            fail("stdin submission was not spooled to disk")
        if not (stdin_spool / "results" / "job-c.summary.json").exists():
            fail("stdin-submitted job left no results")
        print("serve_restart_test: stdin protocol: spooled and served")

    print("serve_restart_test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
