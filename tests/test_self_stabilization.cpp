// Theorem 1.6: the pulse propagation algorithm recovers from arbitrary
// transient state corruption within O(sqrt(n)) pulses (one layer per wave).
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig stab_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 10;
  config.pulses = 40;
  config.seed = seed;
  config.self_stabilizing = true;
  return config;
}

/// Runs with mid-run corruption of `fraction` of all nodes; returns the
/// skew over waves after the corruption settled plus the world's counters.
struct StabOutcome {
  double tail_skew = 0.0;
  double bound = 0.0;
  ExperimentCounters counters;
  std::uint64_t pulses_after = 0;
};

StabOutcome run_with_corruption(std::uint64_t seed, double fraction) {
  const ExperimentConfig config = stab_config(seed);
  World world(config);
  Rng rng(seed ^ 0xC0FFEE);
  const double corrupt_at = 12.0 * config.params.lambda;
  world.run_until(corrupt_at);
  world.corrupt_fraction(fraction, rng);
  world.run_to_completion();
  world.realign_labels();

  StabOutcome outcome;
  outcome.bound = config.params.thm11_bound(world.grid().base().diameter());
  outcome.counters = world.counters();
  // Recovery budget: layers + slack waves after the corruption point.
  const Sigma recovery_end = 12 + static_cast<Sigma>(config.layers) + 6;
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  (void)lo;
  const SkewReport tail = world.skew_window(recovery_end, hi);
  outcome.tail_skew = tail.max_intra;
  outcome.pulses_after = tail.pairs_checked;
  return outcome;
}

class CorruptionSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(CorruptionSweep, RecoversToBoundedSkew) {
  const auto [seed, fraction] = GetParam();
  const StabOutcome outcome = run_with_corruption(seed, fraction);
  ASSERT_GT(outcome.pulses_after, 0u) << "no steady pulses after recovery window";
  EXPECT_LE(outcome.tail_skew, outcome.bound)
      << "fraction=" << fraction << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Fractions, CorruptionSweep,
                         ::testing::Values(std::pair<std::uint64_t, double>{1, 0.1},
                                           std::pair<std::uint64_t, double>{2, 0.3},
                                           std::pair<std::uint64_t, double>{3, 0.6},
                                           std::pair<std::uint64_t, double>{4, 1.0}));

TEST(SelfStabilization, GuardsFireDuringRecovery) {
  const StabOutcome outcome = run_with_corruption(5, 1.0);
  // Full corruption must trip at least some Algorithm 4 machinery.
  EXPECT_GT(outcome.counters.guard_aborts + outcome.counters.watchdog_resets +
                outcome.counters.late_broadcasts,
            0u);
}

TEST(SelfStabilization, CleanRunUnaffectedBySelfStabFlag) {
  // Algorithm 4 == Algorithm 3 after stabilization (Observation C.4):
  // with no corruption, pulse times match the plain run exactly.
  ExperimentConfig config = stab_config(6);
  config.pulses = 16;
  World with_guards(config);
  with_guards.run_to_completion();

  config.self_stabilizing = false;
  World plain(config);
  plain.run_to_completion();

  const auto& grid = with_guards.grid();
  std::uint64_t compared = 0;
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    const auto& ra = with_guards.recorder();
    const auto& rb = plain.recorder();
    const Sigma from = std::max(ra.steady_from(g, 4), rb.steady_from(g, 4));
    const Sigma last = std::min(ra.last_recorded(g), rb.last_recorded(g));
    for (Sigma s = from; s <= last; ++s) {
      const auto ta = ra.pulse_time(g, s);
      const auto tb = rb.pulse_time(g, s);
      if (!ta || !tb) continue;
      ASSERT_NEAR(*ta, *tb, 1e-9);
      ++compared;
    }
  }
  EXPECT_GT(compared, 500u);
}

TEST(SelfStabilization, RecoveryTimeScalesWithLayers) {
  // Stabilization proceeds layer by layer: a deeper grid needs
  // proportionally more waves, but still recovers within ~layers + slack.
  for (std::uint32_t layers : {6u, 12u}) {
    ExperimentConfig config = stab_config(7);
    config.layers = layers;
    config.pulses = static_cast<std::int64_t>(layers) + 26;
    World world(config);
    Rng rng(1234);
    world.run_until(10.0 * config.params.lambda);
    world.corrupt_fraction(1.0, rng);
    world.run_to_completion();
    world.realign_labels();
    const Sigma recovered = 10 + static_cast<Sigma>(layers) + 6;
    const auto [lo, hi] = default_window(world.recorder(), config.warmup);
    (void)lo;
    const SkewReport tail = world.skew_window(recovered, hi);
    ASSERT_GT(tail.pairs_checked, 0u) << "layers=" << layers;
    EXPECT_LE(tail.max_intra,
              config.params.thm11_bound(world.grid().base().diameter()))
        << "layers=" << layers;
  }
}

TEST(SelfStabilization, WithoutGuardsRecoveryStillHappensViaWatchdog) {
  // The startup watchdog alone (Appendix C's message-freshness rule) also
  // recovers the pipeline, because propagation is directional.
  ExperimentConfig config = stab_config(8);
  config.self_stabilizing = false;  // keep watchdog (default on)
  World world(config);
  Rng rng(777);
  world.run_until(12.0 * config.params.lambda);
  world.corrupt_fraction(0.5, rng);
  world.run_to_completion();
  world.realign_labels();
  const Sigma recovered = 12 + static_cast<Sigma>(config.layers) + 8;
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  (void)lo;
  const SkewReport tail = world.skew_window(recovered, hi);
  ASSERT_GT(tail.pairs_checked, 0u);
  EXPECT_LE(tail.max_intra,
            config.params.thm11_bound(world.grid().base().diameter()));
}

}  // namespace
}  // namespace gtrix
