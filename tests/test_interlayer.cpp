// Theorem 1.4 / Corollary 1.5 at test scale: with static fault timing the
// full local skew L (intra- plus inter-layer) stays bounded, consecutive
// pulses repeat with period Lambda, and slow delay/clock variation adds
// only a proportional amount of skew.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

TEST(InterLayer, StaticFaultTimingKeepsFullLBounded) {
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 12;
  config.pulses = 20;
  config.seed = 1;
  // Static-timing faults only (the Theorem 1.4 premise).
  config.faults = {{3, 4, FaultSpec::static_offset(150.0)},
                   {7, 8, FaultSpec::crash()}};
  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.skew.pairs_checked, 0u);
  const double bound = config.params.thm12_bound(result.diameter, 2);
  EXPECT_LE(result.skew.max_intra, bound);
  EXPECT_LE(result.skew.max_inter, 2.0 * bound);
}

TEST(InterLayer, PulsePatternRepeatsExactly) {
  // Theorem 1.4's engine: static everything implies t^{k+1} = t^k + Lambda.
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 16;
  config.seed = 2;
  config.faults = {{4, 3, FaultSpec::static_offset(100.0)}};
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    if (world.is_faulty(g)) continue;
    const Sigma from = rec.steady_from(g, 5);
    const Sigma last = rec.last_recorded(g) - 2;
    for (Sigma s = from; s + 1 <= last; ++s) {
      const auto t1 = rec.pulse_time(g, s);
      const auto t2 = rec.pulse_time(g, s + 1);
      if (!t1 || !t2) continue;
      ASSERT_NEAR(*t2 - *t1, config.params.lambda, 1e-6) << grid.label(g);
    }
  }
}

TEST(InterLayer, JitterFaultBreaksExactRepetition) {
  // Contrast: a timing-changing fault makes downstream pulses vary between
  // waves -- but skew stays bounded (Corollary 1.5 allows a constant
  // number of such nodes).
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 16;
  config.seed = 3;
  config.faults = {{4, 3, FaultSpec::jitter(80.0)}};
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  // The jittering node's own successor sees varying periods.
  const GridNodeId succ = grid.successors(grid.id(4, 3))[0];
  const Sigma from = rec.steady_from(succ, 5);
  bool varied = false;
  for (Sigma s = from; s + 1 <= rec.last_recorded(succ) - 2; ++s) {
    const auto t1 = rec.pulse_time(succ, s);
    const auto t2 = rec.pulse_time(succ, s + 1);
    if (!t1 || !t2) continue;
    if (std::abs((*t2 - *t1) - config.params.lambda) > 1.0) varied = true;
  }
  EXPECT_TRUE(varied);
  // Full skew still bounded.
  const auto report = world.skew();
  EXPECT_LE(report.max_intra, config.params.thm12_bound(grid.base().diameter(), 1));
}

TEST(InterLayer, SlowDelayDriftAddsProportionalSkew) {
  // Corollary 1.5 (ii): drifting link delays by delta shifts skews by at
  // most ~delta. Modulate delays sinusoidally with a tiny amplitude.
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 10;
  config.pulses = 24;
  config.seed = 4;
  World world(config);
  const double amplitude = 2.0;  // absolute delay drift (<< u)
  const double period = 40.0 * config.params.lambda;
  world.network().set_delay_modulation([amplitude, period](EdgeId e, SimTime t) {
    const double phase = 2.0 * 3.14159265358979 * (t / period);
    return amplitude * 0.5 * (1.0 + std::sin(phase + 0.1 * e)) - amplitude * 0.5;
  });
  world.run_to_completion();
  const auto report = world.skew();
  ASSERT_GT(report.pairs_checked, 0u);
  const double base_bound = config.params.thm11_bound(world.grid().base().diameter());
  // Drift adds at most a few multiples of the amplitude on top of the
  // fault-free bound (Lemma 4.31: a delta shift costs at most delta).
  EXPECT_LE(report.max_intra, base_bound + 8.0 * amplitude);
}

TEST(InterLayer, InterLayerSkewTracksIntraLayer) {
  // Inter-layer skew = intra-layer skew + one hop of propagation noise;
  // the two must be of the same order of magnitude.
  ExperimentConfig config;
  config.columns = 12;
  config.layers = 12;
  config.pulses = 18;
  config.seed = 5;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.skew.max_inter, 0.0);
  EXPECT_LE(result.skew.max_inter,
            result.skew.max_intra + 2.0 * config.params.kappa() +
                config.params.u + 1.0);
}

}  // namespace
}  // namespace gtrix
