#include "graph/grid.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "support/check.hpp"

namespace gtrix {
namespace {

Grid make_grid(std::uint32_t columns, std::uint32_t layers) {
  return Grid(BaseGraph::line_replicated(columns), layers);
}

TEST(Grid, NodeCountAndIds) {
  const Grid g = make_grid(6, 4);
  EXPECT_EQ(g.node_count(), g.base().node_count() * 4);
  for (std::uint32_t l = 0; l < 4; ++l) {
    for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
      const GridNodeId id = g.id(v, l);
      EXPECT_EQ(g.base_of(id), v);
      EXPECT_EQ(g.layer_of(id), l);
    }
  }
}

TEST(Grid, Layer0HasNoPredecessors) {
  const Grid g = make_grid(5, 3);
  for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
    EXPECT_TRUE(g.predecessors(g.id(v, 0)).empty());
  }
}

TEST(Grid, LastLayerHasNoSuccessors) {
  const Grid g = make_grid(5, 3);
  for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
    EXPECT_TRUE(g.successors(g.id(v, 2)).empty());
  }
}

TEST(Grid, OwnCopyIsFirstPredecessor) {
  const Grid g = make_grid(7, 5);
  for (std::uint32_t l = 1; l < 5; ++l) {
    for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
      const auto preds = g.predecessors(g.id(v, l));
      ASSERT_FALSE(preds.empty());
      EXPECT_EQ(g.base_of(preds[0]), v);
      EXPECT_EQ(g.layer_of(preds[0]), l - 1);
    }
  }
}

TEST(Grid, PredecessorsAreNeighboursOnPreviousLayer) {
  const Grid g = make_grid(7, 3);
  for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
    const auto preds = g.predecessors(g.id(v, 2));
    EXPECT_EQ(preds.size(), 1u + g.base().degree(v));
    for (std::size_t i = 1; i < preds.size(); ++i) {
      EXPECT_TRUE(g.base().has_edge(v, g.base_of(preds[i])));
      EXPECT_EQ(g.layer_of(preds[i]), 1u);
    }
  }
}

TEST(Grid, InDegreeProfileMatchesFigure3) {
  // Paper Fig. 3: most nodes have in-degree 3, some (neighbours of the
  // replicated endpoints) have 4.
  const Grid g = make_grid(8, 4);
  std::map<std::size_t, int> histogram;
  for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
    ++histogram[g.predecessors(g.id(v, 2)).size()];
  }
  EXPECT_EQ(histogram[3], 8);  // 4 replicas + interior chain nodes
  EXPECT_EQ(histogram[4], 2);  // the two interior nodes next to replicas
  EXPECT_TRUE(histogram.find(5) == histogram.end());
}

TEST(Grid, SuccessorsMirrorPredecessors) {
  const Grid g = make_grid(6, 4);
  for (std::uint32_t l = 0; l + 1 < 4; ++l) {
    for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
      const GridNodeId from = g.id(v, l);
      for (GridNodeId to : g.successors(from)) {
        const auto preds = g.predecessors(to);
        EXPECT_NE(std::find(preds.begin(), preds.end(), from), preds.end());
      }
    }
  }
}

TEST(Grid, EdgeCountConsistent) {
  const Grid g = make_grid(6, 4);
  std::uint64_t via_preds = 0;
  for (GridNodeId id = 0; id < g.node_count(); ++id) {
    via_preds += g.predecessors(id).size();
  }
  EXPECT_EQ(g.edge_count(), via_preds);
}

TEST(Grid, NeighborPredCount) {
  const Grid g = make_grid(6, 3);
  for (BaseNodeId v = 0; v < g.base().node_count(); ++v) {
    EXPECT_EQ(g.neighbor_pred_count(g.id(v, 1)), g.base().degree(v));
  }
}

TEST(CheckedCast, U32MulBoundary) {
  constexpr std::uint64_t kCeiling = std::numeric_limits<std::uint32_t>::max() - 1;
  // Exactly at the ceiling passes; one past it throws with the value named.
  EXPECT_EQ(checked_u32(kCeiling, "count", kCeiling),
            std::numeric_limits<std::uint32_t>::max() - 1);
  EXPECT_THROW((void)checked_u32(kCeiling + 1, "count", kCeiling), std::overflow_error);
  // 2^31 x 2 == 2^32 overflows the id space (ceiling 2^32 - 2).
  EXPECT_THROW((void)checked_u32_mul(0x80000000u, 2u, "count"), std::overflow_error);
  EXPECT_EQ(checked_u32_mul(0x7FFFFFFFu, 2u, "count"), 0xFFFFFFFEu);
  try {
    (void)checked_u32_mul(3, 0x60000000u, "grid node count (3 layers x big base)");
    FAIL() << "expected overflow";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("grid node count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4831838208"), std::string::npos);
  }
}

TEST(Grid, NodeCountOverflowIsRejectedBeforeAllocation) {
  // 514 base nodes (512-column line) x 8,356,000 layers = 4,294,984,000 >
  // 2^32 - 2: must throw from the up-front check, not truncate or try to
  // allocate four billion adjacency vectors.
  BaseGraph base = BaseGraph::line_replicated(512);
  ASSERT_EQ(base.node_count(), 514u);
  EXPECT_THROW((void)Grid(std::move(base), 8356000u), std::overflow_error);
}

TEST(Grid, LabelsIncludeLayer) {
  const Grid g = make_grid(4, 3);
  const GridNodeId id = g.id(g.base().nodes_in_column(1).front(), 2);
  EXPECT_EQ(g.label(id), "(v1, 2)");
}

TEST(Grid, SingleLayerIsValid) {
  const Grid g = make_grid(4, 1);
  EXPECT_EQ(g.node_count(), g.base().node_count());
  for (GridNodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_TRUE(g.predecessors(id).empty());
    EXPECT_TRUE(g.successors(id).empty());
  }
}

TEST(Grid, CycleBaseGrid) {
  const Grid g = Grid(BaseGraph::cycle(6), 3);
  for (BaseNodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(g.predecessors(g.id(v, 1)).size(), 3u);  // own + 2 neighbours
    EXPECT_EQ(g.successors(g.id(v, 1)).size(), 3u);
  }
}

}  // namespace
}  // namespace gtrix
