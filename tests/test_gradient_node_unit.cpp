// Node-level unit tests: a single GradientTrixNode driven by hand-crafted
// message schedules through a real (tiny) network. These pin down the
// pseudocode semantics directly -- until-loop exit times, branch selection,
// correction values, absorption of late current-wave messages, the
// watchdog, and duplicate handling -- independent of the full grid.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "core/gradient_node.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gtrix {
namespace {

/// One node under test with three predecessors (own + two neighbours),
/// rate-1 clock with zero offset (local time == real time), so expected
/// pulse times can be computed by hand.
struct NodeHarness {
  Simulator sim;
  Network net{sim};
  Recorder recorder;
  NetNodeId own_pred, nbr_a, nbr_b, self;
  std::optional<GradientTrixNode> node;
  Params params = Params::with(1000.0, 10.0, 1.0005);

  explicit NodeHarness(GradientNodeConfig config = {}) {
    own_pred = net.add_node(nullptr);
    nbr_a = net.add_node(nullptr);
    nbr_b = net.add_node(nullptr);
    self = net.add_node(nullptr);
    recorder.register_node(self, {});
    config.params = params;
    if (config.skew_bound_hint == 0.0) config.skew_bound_hint = params.thm11_bound(15);
    node.emplace(sim, net, self, HardwareClock(1.0, 0.0),
                 std::vector<NetNodeId>{own_pred, nbr_a, nbr_b}, config, &recorder);
    net.set_sink(self, &*node);
  }

  /// Delivers a pulse from `from` arriving exactly at absolute time `t`.
  void arrive(NetNodeId from, double t, Sigma stamp = 1) {
    net.inject(from, self, Pulse{stamp}, t);
  }

  /// Runs to completion and returns the node's recorded pulse times.
  const std::vector<IterationRecord>& run() {
    sim.run_all();
    return recorder.iterations(self);
  }

  double kappa() const { return params.kappa(); }
  double lambda_minus_d() const { return params.lambda - params.d; }
};

TEST(NodeUnit, BalancedArrivalsPulseAtOwnPlusLambdaMinusD) {
  NodeHarness h;
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1004.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_FALSE(its[0].timeout_branch);
  EXPECT_FALSE(its[0].late);
  // Delta = min_s max(own-max+4sk, own-min-4sk) - k/2 = max(-2, 2) - k/2 < 0
  // -> C = min(own - min + 3k/2, 0) = min(2 + 31.5, 0) = 0.
  EXPECT_DOUBLE_EQ(its[0].correction, 0.0);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1002.0 + h.lambda_minus_d());
}

TEST(NodeUnit, UntilWaitsSymmetricWindowForLastNeighbour) {
  // Neighbour A early, own next; neighbour B arrives before the until
  // deadline 2 H_own - H_min + 2k and is included in the correction.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1010.0);
  // Deadline: 2*1010 - 1000 + 2k = 1020 + 2k. Arrive before it:
  h.arrive(h.nbr_b, 1015.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_FALSE(its[0].max_missing);
  EXPECT_DOUBLE_EQ(its[0].h_max, 1015.0);
  (void)k;
}

TEST(NodeUnit, MissingLastNeighbourCollapsesToNegativeBranch) {
  // Neighbour B never arrives: at the deadline the H_own - H_max term is
  // -infinity and C = min(H_own - H_min + 3k/2, 0) (Lemma B.2's reading).
  NodeHarness h;
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1010.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_TRUE(its[0].max_missing);
  EXPECT_FALSE(its[0].timeout_branch);
  // own - min + 3k/2 = 10 + 31.5 > 0 -> C = 0; pulse at own + (Lambda - d).
  EXPECT_DOUBLE_EQ(its[0].correction, 0.0);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1010.0 + h.lambda_minus_d());
}

TEST(NodeUnit, MissingLastNeighbourWithVeryEarlyOwnTiesToMin) {
  // Own far earlier than the only neighbour: C = own - min + 3k/2 < 0,
  // i.e. the node waits and effectively pulses off H_min - 3k/2.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.own_pred, 1000.0);
  h.arrive(h.nbr_a, 1000.0 + 5.0 * k);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_TRUE(its[0].max_missing);
  EXPECT_DOUBLE_EQ(its[0].correction, -5.0 * k + 1.5 * k);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1000.0 + 5.0 * k - 1.5 * k + h.lambda_minus_d());
}

TEST(NodeUnit, MissingOwnTakesTimeoutBranch) {
  // Own copy silent: until expires at H_max + k/2 + theta k; pulse at
  // H_max + 3k/2 + Lambda - d (Algorithm 3 first branch).
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.nbr_b, 1006.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_TRUE(its[0].timeout_branch);
  EXPECT_TRUE(its[0].own_missing);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1006.0 + 1.5 * k + h.lambda_minus_d());
}

TEST(NodeUnit, LateOwnMessageIsAbsorbedNotDeferred) {
  // Own arrives after the timeout branch committed but before the pulse:
  // it must be consumed by the current wave (Lemma B.1), not leak into the
  // next iteration.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0, 1);
  h.arrive(h.nbr_b, 1006.0, 1);
  // Timeout fires at 1006 + k/2 + theta*k ~= 1037.6; pulse at ~2037.5.
  h.arrive(h.own_pred, 1500.0, 1);  // late own, same wave
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);  // exactly one pulse; no second iteration began
  EXPECT_TRUE(its[0].timeout_branch);
  EXPECT_EQ(h.node->counters().late_absorbed, 1u);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1006.0 + 1.5 * k + h.lambda_minus_d());
}

TEST(NodeUnit, OwnLaterThanTimeoutWindowTreatedAsFaulty) {
  // An own copy arriving more than kappa/2 + theta kappa after the last
  // neighbour misses the until deadline: the node commits the timeout
  // branch (it cannot distinguish "very late" from "never"), exactly as
  // the paper's complete algorithm prescribes.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.nbr_b, 1001.0);
  h.arrive(h.own_pred, 1000.0 + 10.0 * k);  // way beyond the window
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_TRUE(its[0].timeout_branch);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1001.0 + 1.5 * k + h.lambda_minus_d());
}

TEST(NodeUnit, PositiveJumpNeedsWideNeighbourSpread) {
  // Delta > theta kappa with all messages on time requires the neighbours
  // to be far apart (own close to max, min far behind): here
  // A = own-max = k, B = own-min = 9k, Delta = 5k - k/2 > theta k, so the
  // jump-condition clamp yields C = max(A - 3k/2, theta k) = theta k.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.nbr_b, 1000.0 + 8.0 * k);
  h.arrive(h.own_pred, 1000.0 + 9.0 * k);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_FALSE(its[0].timeout_branch);
  EXPECT_DOUBLE_EQ(its[0].correction, h.params.theta * k);
}

TEST(NodeUnit, NegativeJumpWhenOwnIsEarly) {
  // Own far ahead: C = own - min + 3k/2 < 0 -> wait.
  NodeHarness h;
  const double k = h.kappa();
  h.arrive(h.own_pred, 1000.0);
  h.arrive(h.nbr_a, 1000.0 + 8.0 * k);
  h.arrive(h.nbr_b, 1000.0 + 9.0 * k);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].correction, -8.0 * k + 1.5 * k);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1000.0 + 8.0 * k - 1.5 * k + h.lambda_minus_d());
}

TEST(NodeUnit, DuplicateFromSamePredecessorDropped) {
  NodeHarness h;
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.nbr_a, 1001.0);  // duplicate in the same iteration
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1003.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].h_min, 1000.0);
  EXPECT_DOUBLE_EQ(its[0].h_max, 1003.0);
  EXPECT_EQ(h.node->counters().duplicate_drops, 1u);
}

TEST(NodeUnit, MessagesFromStrangersIgnored) {
  NodeHarness h;
  const NetNodeId stranger = h.net.add_node(nullptr);
  h.net.inject(stranger, h.self, Pulse{9}, 900.0);
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1004.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].h_min, 1000.0);
}

TEST(NodeUnit, SecondWaveQueuedDuringWaitStartsNextIteration) {
  NodeHarness h;
  // Wave 1 complete at ~1004; pulse at ~2002. Wave 2 arrivals land during
  // the wait (same slots again) and must be queued, then processed.
  h.arrive(h.nbr_a, 1000.0, 1);
  h.arrive(h.own_pred, 1002.0, 1);
  h.arrive(h.nbr_b, 1004.0, 1);
  h.arrive(h.nbr_a, 1950.0, 2);  // before pulse at ~2002: queued
  h.arrive(h.own_pred, 2990.0, 2);
  h.arrive(h.nbr_b, 2995.0, 2);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 2u);
  EXPECT_EQ(its[0].sigma, 1);
  EXPECT_EQ(its[1].sigma, 2);
  EXPECT_DOUBLE_EQ(its[1].h_min, 1950.0);  // queued arrival keeps its timestamp
}

TEST(NodeUnit, SigmaMajorityOverridesOwnOutlier) {
  NodeHarness h;
  h.arrive(h.nbr_a, 1000.0, 7);
  h.arrive(h.own_pred, 1002.0, 3);  // faulty own-chain label
  h.arrive(h.nbr_b, 1004.0, 7);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_EQ(its[0].sigma, 7);
}

TEST(NodeUnit, SigmaFallsBackToOwnWithoutMajority) {
  NodeHarness h;
  h.arrive(h.nbr_a, 1000.0, 5);
  h.arrive(h.own_pred, 1002.0, 6);
  h.arrive(h.nbr_b, 1004.0, 7);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_EQ(its[0].sigma, 6);
}

TEST(NodeUnit, SigmaContinuityBeatsByzantineOwnLabel) {
  // Regression: a Byzantine own copy with a drifting label plus one correct
  // neighbour and one missing message gives no majority. The node must
  // prefer continuity (last wave + 1) over the faulty own label, or the
  // whole downstream column stays mislabeled forever while timing is fine.
  NodeHarness h;
  // Wave 1: full majority on label 1 -> node's sequence starts at 1.
  h.arrive(h.nbr_a, 1000.0, 1);
  h.arrive(h.own_pred, 1002.0, 1);
  h.arrive(h.nbr_b, 1004.0, 1);
  // Wave 2: own copy lies (label 1 again), one neighbour silent.
  h.arrive(h.nbr_a, 3000.0, 2);
  h.arrive(h.own_pred, 3002.0, 1);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 2u);
  EXPECT_EQ(its[0].sigma, 1);
  EXPECT_EQ(its[1].sigma, 2);  // continuity wins over the faulty own label
}

TEST(NodeUnit, WatchdogClearsStaleFirstNeighbour) {
  // A lone neighbour message with nothing following within theta(2L+u)
  // local time is spurious and must be forgotten (Appendix C).
  GradientNodeConfig config;
  config.startup_watchdog = true;
  NodeHarness h(config);
  const double window =
      h.params.theta * (2.0 * h.params.thm11_bound(15) + h.params.u);
  h.arrive(h.nbr_a, 1000.0, 1);
  // Real wave arrives well after the watchdog window:
  const double t2 = 1000.0 + window + 500.0;
  h.arrive(h.nbr_a, t2, 2);
  h.arrive(h.own_pred, t2 + 2.0, 2);
  h.arrive(h.nbr_b, t2 + 4.0, 2);
  const auto& its = h.run();
  EXPECT_EQ(h.node->counters().watchdog_resets, 1u);
  ASSERT_EQ(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].h_min, t2);  // the stale 1000.0 was cleared
  EXPECT_EQ(its[0].sigma, 2);
}

TEST(NodeUnit, WatchdogDisabledKeepsStaleMessage) {
  GradientNodeConfig config;
  config.startup_watchdog = false;
  NodeHarness h(config);
  h.arrive(h.nbr_a, 1000.0, 1);
  const double t2 = 4000.0;
  h.arrive(h.own_pred, t2, 2);
  h.arrive(h.nbr_b, t2 + 4.0, 2);
  const auto& its = h.run();
  EXPECT_EQ(h.node->counters().watchdog_resets, 0u);
  ASSERT_GE(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].h_min, 1000.0);  // stale message retained
}

TEST(NodeUnit, SimplifiedModeWaitsForAllThree) {
  GradientNodeConfig config;
  config.simplified = true;
  NodeHarness h(config);
  const double k = h.kappa();
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1000.0 + 6.0 * k);  // would trigger full-mode timeout logic
  h.arrive(h.nbr_b, 1000.0 + 7.0 * k);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_FALSE(its[0].timeout_branch);
  EXPECT_DOUBLE_EQ(its[0].h_max, 1000.0 + 7.0 * k);
}

TEST(NodeUnit, BroadcastOffsetShiftsPulse) {
  GradientNodeConfig config;
  config.broadcast_offset = 123.0;
  NodeHarness h(config);
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1004.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_DOUBLE_EQ(its[0].pulse_time, 1002.0 + h.lambda_minus_d() + 123.0);
}

TEST(NodeUnit, SendOverrideReplacesBroadcast) {
  NodeHarness h;
  int override_calls = 0;
  h.node->set_send_override([&override_calls](const Pulse&, SimTime) { ++override_calls; });
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1004.0);
  h.run();
  EXPECT_EQ(override_calls, 1);
  EXPECT_EQ(h.net.messages_sent(), 3u);  // only the injected arrivals
}

TEST(NodeUnit, JumpConditionOffUsesRawDelta) {
  GradientNodeConfig config;
  config.jump_condition = false;
  NodeHarness h(config);
  const double k = h.kappa();
  // Same wide-spread scenario as PositiveJumpNeedsWideNeighbourSpread:
  // raw Delta = 5k - k/2, undamped (vs. the clamp at theta k).
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.nbr_b, 1000.0 + 8.0 * k);
  h.arrive(h.own_pred, 1000.0 + 9.0 * k);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  EXPECT_NEAR(its[0].correction, 4.5 * k, 1e-9);
  EXPECT_GT(its[0].correction, h.params.theta * k);
}

TEST(NodeUnit, ExactlyLambdaPeriodOverManyWaves) {
  NodeHarness h;
  const int waves = 10;
  for (int w = 1; w <= waves; ++w) {
    const double base = 1000.0 + (w - 1) * 2000.0;
    h.arrive(h.nbr_a, base, w);
    h.arrive(h.own_pred, base + 2.0, w);
    h.arrive(h.nbr_b, base + 4.0, w);
  }
  const auto& its = h.run();
  ASSERT_EQ(its.size(), static_cast<std::size_t>(waves));
  for (int w = 1; w < waves; ++w) {
    EXPECT_NEAR(its[static_cast<std::size_t>(w)].pulse_time -
                    its[static_cast<std::size_t>(w - 1)].pulse_time,
                2000.0, 1e-9);
  }
}

TEST(NodeUnit, DriftingClockStretchesWait) {
  // With a rate-theta clock, the local wait Lambda - d - C takes
  // (Lambda - d - C)/theta real time.
  GradientNodeConfig config;
  NodeHarness h(config);
  // Re-create the node with a fast clock.
  h.node.emplace(h.sim, h.net, h.self, HardwareClock(h.params.theta, 0.0),
                 std::vector<NetNodeId>{h.own_pred, h.nbr_a, h.nbr_b},
                 [&] {
                   GradientNodeConfig c;
                   c.params = h.params;
                   c.skew_bound_hint = h.params.thm11_bound(15);
                   return c;
                 }(),
                 &h.recorder);
  h.net.set_sink(h.self, &*h.node);
  h.arrive(h.nbr_a, 1000.0);
  h.arrive(h.own_pred, 1002.0);
  h.arrive(h.nbr_b, 1004.0);
  const auto& its = h.run();
  ASSERT_EQ(its.size(), 1u);
  const double wait = h.lambda_minus_d() - its[0].correction;
  EXPECT_NEAR(its[0].pulse_time, 1002.0 + wait / h.params.theta, 1e-9);
}

}  // namespace
}  // namespace gtrix
