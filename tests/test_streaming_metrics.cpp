// Streaming-vs-full differential suite: the correctness anchor of the
// memory-bounded recording modes.
//
// The contract (metrics/streaming.hpp, docs/scaling.md):
//  * skew EXTREMA, per-layer vectors and pairs_checked are BIT-identical
//    between streaming/windowed and full recording, on every builtin
//    scenario -- the accumulators are a different evaluation order of the
//    same arithmetic, not an approximation;
//  * deviation quantiles are P-squared estimates within a documented
//    tolerance of the exact (full-mode) order statistics; the deviation
//    COUNT stays exact;
//  * windowed mode's retained last-K-waves window supports conditions
//    checks with results identical to full recording over the same window;
//  * campaign output under streaming recording is byte-identical across
//    thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "scenario/registry.hpp"

namespace gtrix {
namespace {

/// Builtins with cells small enough for the differential double-run. The
/// scale scenarios are excluded on runtime grounds only: bench_scale runs
/// the same identity check on them (smoke_bench_scale in CI).
const char* const kDifferentialScenarios[] = {
    "quickstart-grid",     "table1-comparison", "thm11-logd",
    "thm12-worstcase-faults", "thm13-random-faults", "fig5-jump-ablation",
    "thm16-stabilization", "torus-smoke",
};

CampaignResult run_with_recording(const Scenario& scenario, const std::string& mode,
                                  int window = 0) {
  CampaignOptions options;
  options.threads = 2;
  if (!mode.empty()) {
    options.recording_override = ComponentSpec::of(mode);
    if (window > 0) {
      recording_registry().set_param(options.recording_override, "window", Json(window));
    }
  }
  return run_campaign(scenario, options);
}

void expect_identical_extrema(const SkewReport& full, const SkewReport& other,
                              const std::string& where) {
  SCOPED_TRACE(where);
  // Bit-identity: EXPECT_EQ on doubles, not EXPECT_NEAR.
  EXPECT_EQ(full.max_intra, other.max_intra);
  EXPECT_EQ(full.max_inter, other.max_inter);
  EXPECT_EQ(full.local_skew, other.local_skew);
  EXPECT_EQ(full.global_skew, other.global_skew);
  EXPECT_EQ(full.intra_by_layer, other.intra_by_layer);
  EXPECT_EQ(full.inter_by_layer, other.inter_by_layer);
  EXPECT_EQ(full.spread_by_layer, other.spread_by_layer);
  EXPECT_EQ(full.sigma_lo, other.sigma_lo);
  EXPECT_EQ(full.sigma_hi, other.sigma_hi);
  EXPECT_EQ(full.pairs_checked, other.pairs_checked);
  EXPECT_EQ(full.deviations.count, other.deviations.count);
}

/// Documented quantile-estimator tolerance (docs/scaling.md): the
/// log-binned sketch guarantees each reported percentile is within 1% of a
/// true order statistic at that rank, for ANY distribution shape. The
/// assertion allows 3% relative plus a small absolute floor for the rank
/// interpolation the exact (type-7) quantile performs between adjacent
/// order statistics.
void expect_quantiles_within_tolerance(const DeviationStats& exact,
                                       const DeviationStats& estimate,
                                       const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_TRUE(exact.exact);
  if (exact.count == 0) return;
  const auto tolerance = [](double reference) { return 0.03 * std::abs(reference) + 0.05; };
  EXPECT_NEAR(estimate.p50, exact.p50, tolerance(exact.p50));
  EXPECT_NEAR(estimate.p90, exact.p90, tolerance(exact.p90));
  EXPECT_NEAR(estimate.p99, exact.p99, tolerance(exact.p99));
  // The mean is exact arithmetic in a different accumulation order
  // (Welford vs sorted sum); only float associativity separates them.
  EXPECT_NEAR(estimate.mean, exact.mean,
              1e-9 * std::max(1.0, std::abs(exact.mean)));
}

TEST(StreamingMetrics, BitIdenticalExtremaOnEveryBuiltinScenario) {
  for (const char* name : kDifferentialScenarios) {
    SCOPED_TRACE(name);
    const Scenario scenario = builtin_scenario(name);
    // Corrupt cells replay realignment and the recovery scan from the
    // corruption-anchored window, so the look-back must span from the
    // corruption wave through the post-recovery tail (thm16: waves 10..49,
    // window 32 covers it via the pin box plus the rolling tail). Default
    // windows are deliberately too small for that -- campaigns are expected
    // to size recording.window to their corrupt plan.
    const bool corrupt = scenario.cells().front().corrupt.enabled;
    const int window = corrupt ? 32 : 0;
    const CampaignResult full = run_with_recording(scenario, "");
    const CampaignResult streaming = run_with_recording(scenario, "streaming", window);
    ASSERT_EQ(full.cells.size(), streaming.cells.size());
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
      const std::string where = std::string(name) + " cell " + full.cells[i].label;
      expect_identical_extrema(full.cells[i].result.skew, streaming.cells[i].result.skew,
                               where);
      expect_quantiles_within_tolerance(full.cells[i].result.skew.deviations,
                                        streaming.cells[i].result.skew.deviations, where);
      // Full recording reports exact quantiles; streaming estimates --
      // except corrupt cells, whose skew is materialized exactly from the
      // retained window in every mode (streaming.hpp contract).
      EXPECT_TRUE(full.cells[i].result.skew.deviations.exact);
      if (!full.cells[i].corrupt.enabled) {
        EXPECT_FALSE(streaming.cells[i].result.skew.deviations.exact) << where;
      }
    }
  }
}

TEST(StreamingMetrics, WindowedModeMatchesFullExtremaToo) {
  for (const char* name : {"quickstart-grid", "torus-smoke"}) {
    SCOPED_TRACE(name);
    const Scenario scenario = builtin_scenario(name);
    const CampaignResult full = run_with_recording(scenario, "");
    const CampaignResult windowed = run_with_recording(scenario, "windowed");
    ASSERT_EQ(full.cells.size(), windowed.cells.size());
    for (std::size_t i = 0; i < full.cells.size(); ++i) {
      expect_identical_extrema(full.cells[i].result.skew, windowed.cells[i].result.skew,
                               std::string(name) + " cell " + full.cells[i].label);
    }
  }
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.columns = 6;
  config.layers = 6;
  config.pulses = 14;
  config.seed = 9;
  return config;
}

TEST(StreamingMetrics, StreamingDiagnosticsAreCleanOnDirectRuns) {
  ExperimentConfig config = small_config();
  config.recording_spec = ComponentSpec::of("streaming");
  World world(config);
  world.run_to_completion();
  ASSERT_NE(world.streaming(), nullptr);
  EXPECT_EQ(world.streaming()->window_overflows(), 0u);
  EXPECT_EQ(world.streaming()->out_of_order(), 0u);
  EXPECT_GT(world.streaming()->memory_bytes(), 0u);
  EXPECT_GT(world.skew().pairs_checked, 0u);
}

TEST(StreamingMetrics, WindowedConditionsMatchFullOnTheRetainedWindow) {
  ExperimentConfig full_config = small_config();
  World full_world(full_config);
  full_world.run_to_completion();

  ExperimentConfig windowed_config = small_config();
  windowed_config.recording_spec = ComponentSpec::of("windowed");
  recording_registry().set_param(windowed_config.recording_spec, "window", Json(10));
  World windowed_world(windowed_config);
  windowed_world.run_to_completion();

  // The last few waves sit inside every node's retained window (K = 10,
  // cross-layer stagger is one wave per layer edge).
  const auto [lo, hi] = default_window(full_world.recorder(), full_config.warmup);
  (void)lo;
  const Sigma window_lo = hi - 3;
  const ConditionReport full = full_world.conditions_window(2, window_lo, hi);
  const ConditionReport windowed = windowed_world.conditions_window(2, window_lo, hi);
  EXPECT_GT(full.sc_checked, 0u);
  EXPECT_EQ(full.sc_checked, windowed.sc_checked);
  EXPECT_EQ(full.fc_checked, windowed.fc_checked);
  EXPECT_EQ(full.jc_checked, windowed.jc_checked);
  EXPECT_EQ(full.lemma_d2_checked, windowed.lemma_d2_checked);
  EXPECT_EQ(full.lemma_d3_checked, windowed.lemma_d3_checked);
  EXPECT_EQ(full.sc_violations, windowed.sc_violations);
  EXPECT_EQ(full.fc_violations, windowed.fc_violations);
  EXPECT_EQ(full.jc_violations, windowed.jc_violations);
  EXPECT_EQ(full.lemma_d2_violations, windowed.lemma_d2_violations);
  EXPECT_EQ(full.lemma_d3_violations, windowed.lemma_d3_violations);
  EXPECT_EQ(full.median_violations, windowed.median_violations);
}

TEST(StreamingMetrics, StreamingModeRejectsTraceOnlyQueries) {
  ExperimentConfig config = small_config();
  config.recording_spec = ComponentSpec::of("streaming");
  World world(config);
  world.run_to_completion();
  EXPECT_NO_THROW((void)world.skew());
  EXPECT_THROW((void)world.conditions(2), std::logic_error);
  EXPECT_THROW((void)world.skew_window(0, 5), std::logic_error);
  EXPECT_THROW((void)world.realign_labels(), std::logic_error);
}

TEST(StreamingMetrics, WindowedSkewWindowsWorkWhenRetainedAndFailLoudlyWhenNot) {
  // Windowed mode answers any window the retained look-back covers, with
  // results bit-identical to full recording; a window that reaches into
  // evicted waves is a hard, path-qualified error -- never silently wrong.
  ExperimentConfig full_config = small_config();
  World full_world(full_config);
  full_world.run_to_completion();

  ExperimentConfig config = small_config();
  config.recording_spec = ComponentSpec::of("windowed");
  World world(config);
  world.run_to_completion();
  EXPECT_NO_THROW((void)world.conditions(1));
  // Default window (16) retains every wave of this 14-pulse run: the
  // arbitrary window succeeds and matches full recording bit for bit.
  const SkewReport full = full_world.skew_window(0, 5);
  const SkewReport windowed = world.skew_window(0, 5);
  EXPECT_EQ(full.max_intra, windowed.max_intra);
  EXPECT_EQ(full.global_skew, windowed.global_skew);
  EXPECT_EQ(full.pairs_checked, windowed.pairs_checked);

  // A 2-wave window evicts the early waves; asking for them must throw a
  // runtime_error that names the remedy, not return partial numbers.
  ExperimentConfig tight_config = small_config();
  tight_config.recording_spec = ComponentSpec::of("windowed");
  recording_registry().set_param(tight_config.recording_spec, "window", Json(2));
  World tight_world(tight_config);
  tight_world.run_to_completion();
  try {
    (void)tight_world.skew_window(0, 5);
    FAIL() << "under-sized look-back must be a hard error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("window"), std::string::npos) << e.what();
  }
}

TEST(StreamingMetrics, CampaignBytesIdenticalAcrossThreadCountsUnderStreaming) {
  const Scenario scenario = builtin_scenario("quickstart-grid");
  CampaignOptions one;
  one.threads = 1;
  one.recording_override = ComponentSpec::of("streaming");
  CampaignOptions four;
  four.threads = 4;
  four.recording_override = ComponentSpec::of("streaming");
  const std::string a = campaign_jsonl(run_campaign(scenario, one));
  const std::string b = campaign_jsonl(run_campaign(scenario, four));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The emitted configs carry the override, so the bytes say what ran.
  EXPECT_NE(a.find("\"recording\":\"streaming\""), std::string::npos);
}

TEST(StreamingMetrics, CorruptCellsHonorConfiguredRecording) {
  // thm16 cells have a corrupt plan; run_cell runs them in the configured
  // mode -- realignment and the recovery scan replay from the
  // corruption-anchored window -- and still produces exact quantiles.
  const Scenario scenario = builtin_scenario("thm16-stabilization");
  CampaignOptions options;
  options.threads = 2;
  options.recording_override = ComponentSpec::of("streaming");
  recording_registry().set_param(options.recording_override, "window", Json(32));
  const CampaignResult result = run_campaign(scenario, options);
  for (const CampaignCell& cell : result.cells) {
    ASSERT_TRUE(cell.corrupt.enabled);
    EXPECT_TRUE(cell.result.skew.deviations.exact) << cell.label;
    EXPECT_TRUE(cell.result.recovery.enabled) << cell.label;
  }
  // The override IS stamped into corrupt cells' configs -- streaming is
  // what actually ran, and the emitted JSONL says so.
  const std::string jsonl = campaign_jsonl(result);
  EXPECT_NE(jsonl.find("\"kind\":\"streaming\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"recovery\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"realign\""), std::string::npos);

  // Same holds when the SCENARIO itself declares streaming on corrupt
  // cells: the declared mode runs, no silent rewrite to full.
  const Scenario declared = Scenario::from_json(Json::parse(R"({
    "name": "corrupt-streaming",
    "config": {"columns": 5, "layers": 5, "pulses": 40, "self_stabilizing": true,
               "recording": {"kind": "streaming", "window": 32}},
    "corrupt": {"wave": 8.0, "fraction": 1.0}
  })"));
  CampaignOptions plain;
  plain.threads = 1;
  const CampaignResult declared_result = run_campaign(declared, plain);
  ASSERT_EQ(declared_result.cells.size(), 1u);
  EXPECT_TRUE(declared_result.cells[0].result.skew.deviations.exact);
  EXPECT_EQ(resolve_recording(declared_result.cells[0].config.recording_spec).mode,
            RecordingMode::kStreaming);
  EXPECT_NE(campaign_jsonl(declared_result).find("\"kind\":\"streaming\""),
            std::string::npos);
}

TEST(StreamingMetrics, RecordingSpecRoundTripsThroughScenarioJson) {
  const Json doc = Json::parse(R"({
    "name": "rt",
    "config": {"columns": 4, "layers": 4, "pulses": 6,
               "recording": {"kind": "windowed", "window": 12}}
  })");
  const Scenario scenario = Scenario::from_json(doc);
  const auto cells = scenario.cells();
  ASSERT_EQ(cells.size(), 1u);
  const Json serialized = to_json(cells[0].config);
  const ExperimentConfig back = config_from_json(serialized);
  EXPECT_EQ(back, cells[0].config);
  EXPECT_EQ(serialized.at("recording").at("kind").as_string(), "windowed");
  EXPECT_EQ(serialized.at("recording").at("window").as_int(), 12);
  EXPECT_EQ(resolve_recording(back.recording_spec).mode, RecordingMode::kWindowed);
  EXPECT_EQ(resolve_recording(back.recording_spec).window, 12);
}

TEST(StreamingMetrics, DefaultFullRecordingStaysOutOfSerializedConfigs) {
  ExperimentConfig config = small_config();
  const Json j = to_json(config);
  EXPECT_FALSE(j.contains("recording"));
  config.recording_spec = ComponentSpec::of("streaming");
  EXPECT_EQ(to_json(config).at("recording").as_string(), "streaming");
}

TEST(StreamingMetrics, RecordingErrorsArePathQualified) {
  EXPECT_THROW(config_from_json(Json::parse(
                   R"({"columns": 4, "recording": "nope"})")),
               JsonError);
  try {
    (void)config_from_json(Json::parse(
        R"({"columns": 4, "recording": {"kind": "streaming", "window": 1}})"));
    FAIL() << "window=1 must be rejected";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("window"), std::string::npos);
  }
}

TEST(StreamingMetrics, RecordingWindowIsSweepable) {
  const Json doc = Json::parse(R"({
    "name": "sweep-window",
    "config": {"columns": 4, "layers": 4, "pulses": 8, "recording": "streaming"},
    "sweep": {"recording.window": [8, 16]}
  })");
  const Scenario scenario = Scenario::from_json(doc);
  const auto cells = scenario.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(resolve_recording(cells[0].config.recording_spec).window, 8);
  EXPECT_EQ(resolve_recording(cells[1].config.recording_spec).window, 16);
  // Both windows measure the same system: extrema must agree bit for bit.
  const ExperimentResult a = run_experiment(cells[0].config);
  const ExperimentResult b = run_experiment(cells[1].config);
  EXPECT_EQ(a.skew.max_intra, b.skew.max_intra);
  EXPECT_EQ(a.skew.global_skew, b.skew.global_skew);
}

}  // namespace
}  // namespace gtrix
