#include "clock/hardware_clock.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace gtrix {
namespace {

TEST(HardwareClock, StaticRateMapsLinearly) {
  const HardwareClock c(1.5, 100.0);
  EXPECT_DOUBLE_EQ(c.to_local(0.0), 100.0);
  EXPECT_DOUBLE_EQ(c.to_local(10.0), 115.0);
  EXPECT_DOUBLE_EQ(c.rate_at(5.0), 1.5);
}

TEST(HardwareClock, InverseRoundTrip) {
  const HardwareClock c(1.2345, 42.0);
  for (double t : {0.0, 1.0, 17.5, 1000.0, 123456.789}) {
    EXPECT_NEAR(c.to_real(c.to_local(t)), t, 1e-9);
  }
}

TEST(HardwareClock, InverseBeforeOriginThrows) {
  const HardwareClock c(1.0, 50.0);
  EXPECT_THROW((void)c.to_real(49.0), std::logic_error);
}

TEST(HardwareClock, NegativeRealTimeThrows) {
  const HardwareClock c(1.0, 0.0);
  EXPECT_THROW((void)c.to_local(-1.0), std::logic_error);
}

TEST(HardwareClock, NonPositiveRateRejected) {
  EXPECT_THROW(HardwareClock(0.0, 0.0), std::logic_error);
  EXPECT_THROW(HardwareClock(-1.0, 0.0), std::logic_error);
}

TEST(HardwareClock, PiecewiseRatesApplyPerSegment) {
  // rate 1 on [0,10), rate 2 on [10,20), rate 0.5 afterwards; H(0)=5.
  const HardwareClock c({{0.0, 1.0}, {10.0, 2.0}, {20.0, 0.5}}, 5.0);
  EXPECT_DOUBLE_EQ(c.to_local(0.0), 5.0);
  EXPECT_DOUBLE_EQ(c.to_local(10.0), 15.0);
  EXPECT_DOUBLE_EQ(c.to_local(15.0), 25.0);
  EXPECT_DOUBLE_EQ(c.to_local(20.0), 35.0);
  EXPECT_DOUBLE_EQ(c.to_local(30.0), 40.0);
  EXPECT_DOUBLE_EQ(c.rate_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(c.rate_at(12.0), 2.0);
  EXPECT_DOUBLE_EQ(c.rate_at(100.0), 0.5);
}

TEST(HardwareClock, PiecewiseInverseRoundTrip) {
  const HardwareClock c({{0.0, 1.1}, {7.0, 1.9}, {50.0, 1.3}}, 3.0);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 200.0);
    EXPECT_NEAR(c.to_real(c.to_local(t)), t, 1e-9);
  }
}

TEST(HardwareClock, PiecewiseMinMaxRates) {
  const HardwareClock c({{0.0, 1.2}, {5.0, 1.001}, {9.0, 1.4}}, 0.0);
  EXPECT_DOUBLE_EQ(c.min_rate(), 1.001);
  EXPECT_DOUBLE_EQ(c.max_rate(), 1.4);
}

TEST(HardwareClock, ScheduleMustStartAtZero) {
  EXPECT_THROW(HardwareClock({{1.0, 1.0}}, 0.0), std::logic_error);
}

TEST(HardwareClock, BreakpointsMustIncrease) {
  EXPECT_THROW(HardwareClock({{0.0, 1.0}, {0.0, 1.1}}, 0.0), std::logic_error);
}

TEST(HardwareClock, EmptyScheduleRejected) {
  EXPECT_THROW(HardwareClock({}, 0.0), std::logic_error);
}

/// Model property (paper §2): for rates in [1, theta],
/// t' - t <= H(t') - H(t) <= theta (t' - t).
class ClockDriftBounds : public ::testing::TestWithParam<double> {};

TEST_P(ClockDriftBounds, RespectsModelEnvelope) {
  const double theta = GetParam();
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    // Random piecewise schedule with rates in [1, theta].
    std::vector<std::pair<SimTime, double>> schedule;
    double t = 0.0;
    for (int seg = 0; seg < 5; ++seg) {
      schedule.emplace_back(t, rng.uniform(1.0, theta));
      t += rng.uniform(1.0, 50.0);
    }
    const HardwareClock c(schedule, rng.uniform(0.0, 100.0));
    for (int probe = 0; probe < 50; ++probe) {
      const double a = rng.uniform(0.0, 300.0);
      const double b = a + rng.uniform(0.001, 100.0);
      const double dh = c.to_local(b) - c.to_local(a);
      EXPECT_GE(dh, (b - a) - 1e-9);
      EXPECT_LE(dh, theta * (b - a) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ClockDriftBounds,
                         ::testing::Values(1.0001, 1.001, 1.01, 1.1));

TEST(HardwareClock, MonotonicityUnderRandomProbes) {
  const HardwareClock c({{0.0, 1.3}, {11.0, 1.0001}, {29.0, 1.2}}, 10.0);
  Rng rng(8);
  double last_t = 0.0;
  double last_h = c.to_local(0.0);
  for (int i = 0; i < 500; ++i) {
    const double t = last_t + rng.uniform(0.0, 2.0);
    const double h = c.to_local(t);
    EXPECT_GE(h, last_h);
    last_t = t;
    last_h = h;
  }
}

}  // namespace
}  // namespace gtrix
