// Direct unit tests of the skew computations (metrics/skew.*) on synthetic
// traces with hand-computable answers.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/skew.hpp"

namespace gtrix {
namespace {

/// Two-layer replicated-line world with directly settable pulse times.
struct SkewFixture {
  Grid grid;
  Recorder recorder;
  GridTrace trace;

  SkewFixture(std::uint32_t columns, std::uint32_t layers)
      : grid(BaseGraph::line_replicated(columns), layers) {
    for (GridNodeId g = 0; g < grid.node_count(); ++g) {
      NodeMeta meta;
      meta.layer = grid.layer_of(g);
      meta.base = grid.base_of(g);
      recorder.register_node(g, meta);
    }
    trace.grid = &grid;
    trace.recorder = &recorder;
    for (GridNodeId g = 0; g < grid.node_count(); ++g) trace.node_ids.push_back(g);
    trace.node_warmup = 0;
    trace.node_tail = 0;
  }

  void set(BaseNodeId v, std::uint32_t layer, Sigma s, double t) {
    recorder.record_pulse(grid.id(v, layer), s, t);
  }

  void mark_faulty(BaseNodeId v, std::uint32_t layer) {
    NodeMeta meta = recorder.meta(grid.id(v, layer));
    meta.faulty = true;
    recorder.register_node(grid.id(v, layer), meta);
  }
};

TEST(SkewMetrics, IntraLayerMaxOverAdjacentPairs) {
  SkewFixture f(4, 1);
  // Nodes: 0,1 (col0), 2 (col1), 3 (col2), 4,5 (col3).
  const double times[] = {0.0, 2.0, 10.0, 4.0, 5.0, 6.0};
  for (BaseNodeId v = 0; v < 6; ++v) f.set(v, 0, 1, times[v]);
  const SkewReport report = compute_skew(f.trace, 1, 1);
  // Largest adjacent difference: col0 node(2.0 or 0.0) vs col1 (10.0) -> 10.
  EXPECT_DOUBLE_EQ(report.intra_by_layer[0], 10.0);
  EXPECT_DOUBLE_EQ(report.max_intra, 10.0);
  // Layer spread: max 10 - min 0.
  EXPECT_DOUBLE_EQ(report.global_skew, 10.0);
}

TEST(SkewMetrics, InterLayerComparesConsecutiveWaves) {
  SkewFixture f(4, 2);
  // All layer-0 nodes pulse wave sigma at sigma*100; layer-1 nodes pulse
  // wave sigma at sigma*100 + 100 + delta(v).
  for (BaseNodeId v = 0; v < 6; ++v) {
    for (Sigma s = 1; s <= 4; ++s) {
      f.set(v, 0, s, s * 100.0);
      f.set(v, 1, s, s * 100.0 + 100.0 + (v == 3 ? 7.0 : 0.0));
    }
  }
  const SkewReport report = compute_skew(f.trace, 1, 3);
  // |t^{s+1}_{v,0} - t^s_{w,1}| = |(s+1)*100 - (s*100 + 100 + delta)| = delta.
  EXPECT_DOUBLE_EQ(report.max_inter, 7.0);
  EXPECT_DOUBLE_EQ(report.inter_by_layer[0], 7.0);
}

TEST(SkewMetrics, FaultyNodesExcluded) {
  SkewFixture f(4, 1);
  for (BaseNodeId v = 0; v < 6; ++v) f.set(v, 0, 1, 0.0);
  f.set(2, 0, 1, 1e6);  // absurd outlier
  f.mark_faulty(2, 0);
  const SkewReport report = compute_skew(f.trace, 1, 1);
  EXPECT_DOUBLE_EQ(report.max_intra, 0.0);
  EXPECT_GT(report.pairs_skipped, 0u);
}

TEST(SkewMetrics, MissingPulsesSkipped) {
  SkewFixture f(4, 1);
  f.set(0, 0, 1, 0.0);
  // node 1..5 have no pulses at sigma 1.
  const SkewReport report = compute_skew(f.trace, 1, 1);
  EXPECT_EQ(report.pairs_checked, 0u);
  EXPECT_GT(report.pairs_skipped, 0u);
  EXPECT_DOUBLE_EQ(report.max_intra, 0.0);
}

TEST(SkewMetrics, NodeWarmupFiltersEarlyPulses) {
  SkewFixture f(4, 1);
  for (BaseNodeId v = 0; v < 6; ++v) {
    f.set(v, 0, 1, v == 2 ? 500.0 : 0.0);  // big skew at wave 1
    f.set(v, 0, 2, 100.0);                 // perfect at wave 2
    f.set(v, 0, 3, 200.0);
  }
  f.trace.node_warmup = 1;  // skip each node's first pulse
  f.trace.node_tail = 0;
  const SkewReport report = compute_skew(f.trace, 1, 3);
  EXPECT_DOUBLE_EQ(report.max_intra, 0.0);  // wave-1 outlier filtered
}

TEST(SkewMetrics, NodeTailFiltersLastPulses) {
  SkewFixture f(4, 1);
  for (BaseNodeId v = 0; v < 6; ++v) {
    f.set(v, 0, 1, 0.0);
    f.set(v, 0, 2, v == 2 ? 900.0 : 100.0);  // garbage final wave
  }
  f.trace.node_warmup = 0;
  f.trace.node_tail = 1;
  const SkewReport report = compute_skew(f.trace, 1, 2);
  EXPECT_DOUBLE_EQ(report.max_intra, 0.0);
}

TEST(SkewMetrics, IntraSkewBySigmaSeries) {
  SkewFixture f(4, 1);
  for (BaseNodeId v = 0; v < 6; ++v) {
    f.set(v, 0, 1, 0.0);
    f.set(v, 0, 2, v == 2 ? 105.0 : 100.0);
    f.set(v, 0, 3, 200.0);
  }
  const auto series = intra_skew_by_sigma(f.trace, 0, 1, 3);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 5.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);
}

TEST(SkewMetrics, DefaultWindowSpansRecorder) {
  SkewFixture f(4, 1);
  f.set(0, 0, 3, 1.0);
  f.set(1, 0, 9, 2.0);
  const auto [lo, hi] = default_window(f.recorder, 2);
  EXPECT_EQ(lo, 3);
  EXPECT_EQ(hi, 9);
}

TEST(SkewMetrics, EmptyRecorderWindowIsEmpty) {
  Recorder empty;
  const auto [lo, hi] = default_window(empty, 2);
  EXPECT_GT(lo, hi);
}

TEST(SkewMetrics, SpreadByLayerIndependentOfAdjacency) {
  SkewFixture f(5, 1);
  // Non-adjacent extremes: col0 at 0, col4 at 50, everything between at 25.
  const auto& base = f.grid.base();
  for (BaseNodeId v = 0; v < base.node_count(); ++v) {
    const std::uint32_t c = base.column(v);
    f.set(v, 0, 1, c == 0 ? 0.0 : (c == 4 ? 50.0 : 25.0));
  }
  const SkewReport report = compute_skew(f.trace, 1, 1);
  EXPECT_DOUBLE_EQ(report.spread_by_layer[0], 50.0);
  EXPECT_DOUBLE_EQ(report.max_intra, 25.0);  // adjacent gap
}

}  // namespace
}  // namespace gtrix
