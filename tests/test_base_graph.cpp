#include "graph/base_graph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace gtrix {
namespace {

TEST(LineReplicated, NodeAndEdgeCounts) {
  // columns interior + 2 replicas each end: n = columns + 2.
  const BaseGraph g = BaseGraph::line_replicated(8);
  EXPECT_EQ(g.node_count(), 10u);
  // Edges: 2 replica edges + 2x2 fan edges + (columns-3) interior chain.
  EXPECT_EQ(g.edge_count(), 2u + 4u + 5u);
}

TEST(LineReplicated, MinimumDegreeTwo) {
  for (std::uint32_t columns : {2u, 3u, 4u, 8u, 33u}) {
    const BaseGraph g = BaseGraph::line_replicated(columns);
    EXPECT_GE(g.min_degree(), 2u) << "columns=" << columns;
  }
}

TEST(LineReplicated, DegreeProfile) {
  const BaseGraph g = BaseGraph::line_replicated(8);
  std::multiset<std::uint32_t> degrees;
  for (BaseNodeId v = 0; v < g.node_count(); ++v) degrees.insert(g.degree(v));
  // Replicas have degree 2 (partner + first interior), the two interior
  // nodes adjacent to the replica pairs have degree 3, the rest degree 2.
  EXPECT_EQ(degrees.count(2), 8u);
  EXPECT_EQ(degrees.count(3), 2u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(LineReplicated, DiameterIsColumnsMinusOne) {
  for (std::uint32_t columns : {3u, 4u, 16u, 65u}) {
    EXPECT_EQ(BaseGraph::line_replicated(columns).diameter(), columns - 1)
        << "columns=" << columns;
  }
}

TEST(LineReplicated, ColumnsAssignReplicasTogether) {
  const BaseGraph g = BaseGraph::line_replicated(5);
  EXPECT_EQ(g.nodes_in_column(0).size(), 2u);
  EXPECT_EQ(g.nodes_in_column(4).size(), 2u);
  for (std::uint32_t c = 1; c < 4; ++c) EXPECT_EQ(g.nodes_in_column(c).size(), 1u);
  for (BaseNodeId v : g.nodes_in_column(0)) EXPECT_EQ(g.column(v), 0u);
  for (BaseNodeId v : g.nodes_in_column(4)) EXPECT_EQ(g.column(v), 4u);
}

TEST(LineReplicated, ReplicasAreConnected) {
  const BaseGraph g = BaseGraph::line_replicated(6);
  const auto left = g.nodes_in_column(0);
  const auto right = g.nodes_in_column(5);
  EXPECT_TRUE(g.has_edge(left[0], left[1]));
  EXPECT_TRUE(g.has_edge(right[0], right[1]));
  EXPECT_EQ(g.distance(left[0], left[1]), 1u);
}

TEST(LineReplicated, DistancesMatchColumns) {
  const BaseGraph g = BaseGraph::line_replicated(7);
  const BaseNodeId a = g.nodes_in_column(1).front();
  const BaseNodeId b = g.nodes_in_column(5).front();
  EXPECT_EQ(g.distance(a, b), 4u);
  EXPECT_EQ(g.distance(a, a), 0u);
  EXPECT_EQ(g.distance(a, b), g.distance(b, a));
}

TEST(LineReplicated, LabelsAreReadable) {
  const BaseGraph g = BaseGraph::line_replicated(4);
  const auto left = g.nodes_in_column(0);
  EXPECT_EQ(g.label(left[0]), "v0");
  EXPECT_EQ(g.label(left[1]), "v0'");
}

TEST(LineReplicated, TwoColumnDegenerate) {
  const BaseGraph g = BaseGraph::line_replicated(2);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_GE(g.min_degree(), 2u);
  EXPECT_EQ(g.diameter(), 1u);  // complete-ish coupling of the two pairs
}

TEST(LineReplicated, TooFewColumnsRejected) {
  EXPECT_THROW(BaseGraph::line_replicated(1), std::logic_error);
}

TEST(Cycle, BasicProperties) {
  const BaseGraph g = BaseGraph::cycle(8);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.diameter(), 4u);
  EXPECT_EQ(g.distance(0, 5), 3u);  // around the short side
}

TEST(Cycle, OddCycleDiameter) {
  EXPECT_EQ(BaseGraph::cycle(7).diameter(), 3u);
}

TEST(Cycle, TooSmallRejected) {
  EXPECT_THROW(BaseGraph::cycle(2), std::logic_error);
}

TEST(Path, BasicProperties) {
  const BaseGraph g = BaseGraph::path(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.diameter(), 4u);
  EXPECT_EQ(g.distance(0, 4), 4u);
}

TEST(EdgesList, MatchesAdjacency) {
  const BaseGraph g = BaseGraph::line_replicated(6);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), g.edge_count());
  for (const auto& [a, b] : edges) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(g.has_edge(a, b));
    EXPECT_TRUE(g.has_edge(b, a));
  }
}

TEST(Distances, TriangleInequalityHolds) {
  const BaseGraph g = BaseGraph::line_replicated(9);
  for (BaseNodeId a = 0; a < g.node_count(); ++a) {
    for (BaseNodeId b = 0; b < g.node_count(); ++b) {
      for (BaseNodeId c = 0; c < g.node_count(); ++c) {
        EXPECT_LE(g.distance(a, c), g.distance(a, b) + g.distance(b, c));
      }
    }
  }
}

}  // namespace
}  // namespace gtrix
