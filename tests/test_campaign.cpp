#include "runner/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"

namespace gtrix {
namespace {

Scenario tiny_scenario() {
  return Scenario::from_json(Json::parse(R"({
    "name": "tiny",
    "config": {"columns": 5, "layers": 5, "pulses": 8},
    "sweep": {"columns": [4, 5], "seed": {"from": 1, "count": 3}}
  })"));
}

TEST(Campaign, RunsAllCellsInOrder) {
  const CampaignResult result = run_campaign(tiny_scenario(), {.threads = 2, .recording_override = {}});
  EXPECT_EQ(result.scenario, "tiny");
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_EQ(result.cells[0].label, "columns=4,seed=1");
  EXPECT_EQ(result.cells[5].label, "columns=5,seed=3");
  for (const CampaignCell& cell : result.cells) {
    EXPECT_GT(cell.result.skew.pairs_checked, 0u);
    EXPECT_GT(cell.result.counters.events_executed, 0u);
    EXPECT_GT(cell.result.skew.max_intra, 0.0);
  }
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(Campaign, JsonlIsByteIdenticalAcrossThreadCounts) {
  const std::string one = campaign_jsonl(run_campaign(tiny_scenario(), {.threads = 1, .recording_override = {}}));
  const std::string four = campaign_jsonl(run_campaign(tiny_scenario(), {.threads = 4, .recording_override = {}}));
  EXPECT_EQ(one, four);
  EXPECT_FALSE(one.empty());
}

TEST(Campaign, JsonlLinesParseAndRoundTripConfigs) {
  const CampaignResult result = run_campaign(tiny_scenario(), {.threads = 2, .recording_override = {}});
  std::istringstream lines(campaign_jsonl(result));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const Json parsed = Json::parse(line);
    EXPECT_EQ(parsed.at("scenario").as_string(), "tiny");
    EXPECT_EQ(parsed.at("cell").as_string(), result.cells[count].label);
    // The embedded config is a complete, loadable experiment description.
    const ExperimentConfig back = config_from_json(parsed.at("config"));
    EXPECT_EQ(back, result.cells[count].config);
    EXPECT_GT(parsed.at("result").at("skew").at("local").as_double(), 0.0);
    ++count;
  }
  EXPECT_EQ(count, result.cells.size());
}

TEST(Campaign, SummaryAggregates) {
  const CampaignResult result = run_campaign(tiny_scenario(), {.threads = 2, .recording_override = {}});
  const Json summary = campaign_summary(result);
  EXPECT_EQ(summary.at("scenario").as_string(), "tiny");
  EXPECT_EQ(summary.at("cells").as_int(), 6);
  const Json& local = summary.at("local_skew");
  EXPECT_LE(local.at("min").as_double(), local.at("p50").as_double());
  EXPECT_LE(local.at("p50").as_double(), local.at("p95").as_double());
  EXPECT_LE(local.at("p95").as_double(), local.at("max").as_double());
  // The JSONL reports the engine-invariant logical event count, never the
  // raw executed-event counter (which varies with batching and sharding).
  EXPECT_GT(summary.at("counters").at("logical_events").as_int(), 0);
  EXPECT_EQ(summary.at("shards").as_int(), 1);
  EXPECT_EQ(summary.at("cells_within_thm11_bound").as_int(), 6);
  EXPECT_EQ(local.at("samples").as_int(), 6);
}

TEST(Campaign, EmptySampleSetsReportNullPercentilesNotZero) {
  // A summary over zero cells must be distinguishable from a genuine
  // zero-skew run: "samples": 0 plus null percentile fields, never 0.0.
  CampaignResult empty;
  empty.scenario = "empty";
  const Json summary = campaign_summary(empty);
  const Json& local = summary.at("local_skew");
  EXPECT_EQ(local.at("samples").as_int(), 0);
  EXPECT_TRUE(local.at("min").is_null());
  EXPECT_TRUE(local.at("mean").is_null());
  EXPECT_TRUE(local.at("p50").is_null());
  EXPECT_TRUE(local.at("p95").is_null());
  EXPECT_TRUE(local.at("max").is_null());
  EXPECT_TRUE(summary.at("global_skew").at("p90").is_null());
  // The document still parses back (null round-trips).
  const Json back = Json::parse(summary.dump(2));
  EXPECT_TRUE(back.at("local_skew").at("p50").is_null());
}

TEST(Campaign, CorruptionCellRecoversWithinBound) {
  const Scenario scenario = Scenario::from_json(Json::parse(R"({
    "name": "stab-tiny",
    "config": {"columns": 6, "layers": 5, "pulses": 30, "self_stabilizing": true},
    "corrupt": {"wave": 8, "fraction": 1.0}
  })"));
  const CampaignResult result = run_campaign(scenario, {.threads = 1, .recording_override = {}});
  ASSERT_EQ(result.cells.size(), 1u);
  const CampaignCell& cell = result.cells[0];
  EXPECT_TRUE(cell.corrupt.enabled);
  // Post-recovery window: skew is back under the Theorem 1.1 bound even
  // though the corruption transient itself was far above it.
  EXPECT_GT(cell.result.skew.pairs_checked, 0u);
  EXPECT_LE(cell.result.skew.max_intra, cell.result.thm11_bound);
  // Corruption runs deterministically too.
  const CampaignResult again = run_campaign(scenario, {.threads = 4, .recording_override = {}});
  EXPECT_EQ(campaign_jsonl(result), campaign_jsonl(again));
}

TEST(Campaign, CorruptionWithoutRecoveryWindowIsRejected) {
  // pulses leaves no waves after the recovery budget -> loud error instead
  // of reporting mid-transient skew as the stabilized result.
  const Scenario scenario = Scenario::from_json(Json::parse(R"({
    "name": "stab-short",
    "config": {"columns": 6, "layers": 12, "pulses": 16, "self_stabilizing": true},
    "corrupt": {"wave": 10, "fraction": 1.0}
  })"));
  EXPECT_THROW((void)run_campaign(scenario, {.threads = 1, .recording_override = {}}), std::runtime_error);
}

TEST(Campaign, BuiltinQuickstartDeterministicEndToEnd) {
  const Scenario scenario = builtin_scenario("quickstart-grid");
  const std::string one = campaign_jsonl(run_campaign(scenario, {.threads = 1, .recording_override = {}}));
  const std::string many = campaign_jsonl(run_campaign(scenario, {.threads = 0, .recording_override = {}}));
  EXPECT_EQ(one, many);
  // 8 lines, one per cell.
  EXPECT_EQ(static_cast<int>(std::count(one.begin(), one.end(), '\n')), 8);
}

}  // namespace
}  // namespace gtrix
