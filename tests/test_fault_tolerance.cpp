// Fault-tolerance behaviour (Theorems 1.2 / 1.3 at test scale):
// bounded skew with crash / offset / split / jitter / rogue faults, median
// sticking (Corollary 4.29), and mute-after transitions.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

/// Builds the grid a config would use (for fault-plan setup in tests).
Grid world_grid(const ExperimentConfig& config) {
  return Grid(BaseGraph::line_replicated(config.columns), config.layers);
}

ExperimentConfig fault_config(std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = 10;
  config.layers = 12;
  config.pulses = 20;
  config.seed = seed;
  return config;
}

struct FaultCase {
  const char* name;
  FaultSpec spec;
};

class SingleFaultSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(SingleFaultSweep, SkewStaysWithinTheorem12Bound) {
  ExperimentConfig config = fault_config(31);
  config.faults = {{5, 5, GetParam().spec}};
  const ExperimentResult result = run_experiment(config);
  ASSERT_GT(result.skew.pairs_checked, 0u);
  const double bound = config.params.thm12_bound(result.diameter, 1);
  EXPECT_LE(result.skew.max_intra, bound) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SingleFaultSweep,
    ::testing::Values(FaultCase{"crash", FaultSpec::crash()},
                      FaultCase{"offset_late", FaultSpec::static_offset(200.0)},
                      FaultCase{"offset_early", FaultSpec::static_offset(-200.0)},
                      FaultCase{"split", FaultSpec::split(150.0)},
                      FaultCase{"jitter", FaultSpec::jitter(100.0)},
                      FaultCase{"rogue", FaultSpec::fixed_period(1990.0)},
                      FaultCase{"mute", FaultSpec::mute_after(8)}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name);
    });

TEST(FaultTolerance, CrashDoesNotStallDownstream) {
  ExperimentConfig config = fault_config(32);
  config.faults = {{4, 3, FaultSpec::crash()}};
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  // Successors of the crashed node keep pulsing (timeout branch).
  const GridNodeId crashed = grid.id(4, 3);
  for (GridNodeId succ : grid.successors(crashed)) {
    EXPECT_GT(rec.iterations(succ).size(), 10u) << grid.label(succ);
  }
  // The own-copy successor must have used the timeout branch.
  const GridNodeId own_succ = grid.successors(crashed)[0];
  std::uint64_t timeouts = 0;
  for (const auto& it : rec.iterations(own_succ)) timeouts += it.timeout_branch ? 1 : 0;
  EXPECT_GT(timeouts, 8u);
}

TEST(FaultTolerance, TwoDistantFaultsTolerated) {
  ExperimentConfig config = fault_config(33);
  config.faults = {{2, 3, FaultSpec::crash()}, {7, 8, FaultSpec::static_offset(120.0)}};
  ASSERT_TRUE(is_one_local(world_grid(config), config.faults));
  const ExperimentResult result = run_experiment(config);
  EXPECT_LE(result.skew.max_intra, config.params.thm12_bound(result.diameter, 2));
}

TEST(FaultTolerance, MedianConditionHoldsUnderAllFaultKinds) {
  for (const FaultSpec& spec :
       {FaultSpec::crash(), FaultSpec::static_offset(180.0), FaultSpec::split(120.0),
        FaultSpec::fixed_period(2050.0)}) {
    ExperimentConfig config = fault_config(34);
    config.faults = {{5, 6, spec}};
    World world(config);
    world.run_to_completion();
    const ConditionReport report = world.conditions(4);
    EXPECT_GT(report.median_checked, 0u);
    EXPECT_EQ(report.median_violations, 0u)
        << "kind=" << static_cast<int>(spec.kind) << "\n"
        << (report.samples.empty() ? "" : report.samples[0]);
  }
}

TEST(FaultTolerance, MuteAfterStopsSending) {
  ExperimentConfig config = fault_config(35);
  config.faults = {{5, 5, FaultSpec::mute_after(6)}};
  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  // After the mute point, the own-copy successor times out on every wave.
  const GridNodeId muted = grid.id(5, 5);
  const GridNodeId own_succ = grid.successors(muted)[0];
  std::uint64_t timeouts = 0;
  for (const auto& it : world.recorder().iterations(own_succ)) {
    timeouts += it.timeout_branch ? 1 : 0;
  }
  EXPECT_GT(timeouts, 5u);
  EXPECT_LT(timeouts, world.recorder().iterations(own_succ).size());
}

TEST(FaultTolerance, RandomIidFaultsStayBounded) {
  // Theorem 1.3 at test scale: p ~ 0.5 / n^(1/2) faults, several seeds.
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    ExperimentConfig config = fault_config(seed);
    Rng rng(seed * 1000);
    PlacementOptions options;
    const double n = static_cast<double>(config.columns) * config.layers;
    options.probability = 0.5 / std::sqrt(n);
    config.faults =
        sample_iid_faults(world_grid(config), options, FaultSpec::crash(), rng);
    const ExperimentResult result = run_experiment(config);
    // Bounded by the single-fault Theorem 1.2 envelope with slack: random
    // sparse faults must not compound (Theorem 1.3's point).
    EXPECT_LE(result.skew.max_intra, config.params.thm12_bound(result.diameter, 1))
        << "seed " << seed << " faults " << config.faults.size();
  }
}

TEST(FaultTolerance, FaultyNodesExcludedFromSkew) {
  ExperimentConfig config = fault_config(36);
  config.faults = {{5, 5, FaultSpec::static_offset(500.0)}};
  World world(config);
  world.run_to_completion();
  EXPECT_TRUE(world.is_faulty(world.grid().id(5, 5)));
  EXPECT_TRUE(world.recorder().meta(world.grid().id(5, 5)).faulty);
}

}  // namespace
}  // namespace gtrix
