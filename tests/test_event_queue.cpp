#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace gtrix {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](SimTime) { order.push_back(3); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(2.0, [&](SimTime) { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i](SimTime) { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlerReceivesEventTime) {
  EventQueue q;
  SimTime seen = -1.0;
  q.schedule(7.25, [&](SimTime t) { seen = t; });
  q.run_next();
  EXPECT_DOUBLE_EQ(seen, 7.25);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1.0, [&](SimTime) { ++fired; });
  q.schedule(2.0, [&](SimTime) { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](SimTime) {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](SimTime) {});
  q.run_next();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](SimTime) {});
  q.schedule(2.0, [](SimTime) {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    times.push_back(t);
    if (times.size() < 5) q.schedule(t + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(times, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CountsAreTracked) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [](SimTime) {});
  q.schedule(2.0, [](SimTime) {});
  EXPECT_EQ(q.scheduled_count(), 2u);
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.run_next();
  EXPECT_EQ(q.executed_count(), 1u);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, LargeRandomLoadIsSorted) {
  EventQueue q;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    q.schedule(rng.uniform(0.0, 1e6), [](SimTime) {});
  }
  double last = -1.0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_GE(t, last);
    last = t;
    q.run_next();
  }
}

}  // namespace
}  // namespace gtrix
