#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace gtrix {
namespace {

/// Test target: records every dispatched event in order.
struct EventLog final : TimerTarget {
  std::vector<Event> events;

  void on_timer(const Event& event) override { events.push_back(event); }

  std::vector<std::int64_t> tags() const {
    std::vector<std::int64_t> out;
    for (const Event& e : events) out.push_back(e.payload.i);
    return out;
  }
};

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  EventLog log;
  q.schedule(3.0, &log, 0, EventPayload{.i = 3});
  q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.schedule(2.0, &log, 0, EventPayload{.i = 2});
  while (q.run_next()) {
  }
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  EventLog log;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, &log, 0, EventPayload{.i = i});
  }
  while (q.run_next()) {
  }
  ASSERT_EQ(log.events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.events[static_cast<std::size_t>(i)].payload.i, i);
  }
}

TEST(EventQueue, SameTimestampFifoSurvivesCancellationChurn) {
  // Interleave cancelled events among survivors at one timestamp: the
  // survivors must still fire in their original scheduling order.
  EventQueue q;
  EventLog log;
  std::vector<TimerHandle> doomed;
  for (int i = 0; i < 20; ++i) {
    const TimerHandle h = q.schedule(5.0, &log, 0, EventPayload{.i = i});
    if (i % 2 == 1) doomed.push_back(h);
  }
  for (TimerHandle h : doomed) EXPECT_TRUE(q.cancel(h));
  while (q.run_next()) {
  }
  std::vector<std::int64_t> expected;
  for (int i = 0; i < 20; i += 2) expected.push_back(i);
  EXPECT_EQ(log.tags(), expected);
}

TEST(EventQueue, HandlerReceivesEventTimeKindAndPayload) {
  EventQueue q;
  EventLog log;
  q.schedule(7.25, &log, 42, EventPayload{.a = 1, .b = 2, .c = 3, .i = -9, .f = 0.5});
  q.run_next();
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_DOUBLE_EQ(log.events[0].time, 7.25);
  EXPECT_EQ(log.events[0].kind, 42u);
  EXPECT_EQ(log.events[0].payload.a, 1u);
  EXPECT_EQ(log.events[0].payload.b, 2u);
  EXPECT_EQ(log.events[0].payload.c, 3u);
  EXPECT_EQ(log.events[0].payload.i, -9);
  EXPECT_DOUBLE_EQ(log.events[0].payload.f, 0.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  EventLog log;
  const TimerHandle h = q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.schedule(2.0, &log, 0, EventPayload{.i = 2});
  EXPECT_TRUE(q.cancel(h));
  while (q.run_next()) {
  }
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{2}));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventLog log;
  const TimerHandle h = q.schedule(1.0, &log, 0);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, HandleInvalidAfterFire) {
  EventQueue q;
  EventLog log;
  const TimerHandle h = q.schedule(1.0, &log, 0);
  EXPECT_TRUE(q.pending(h));
  q.run_next();
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  // After the original event fires, its slot is recycled for a new event;
  // the old handle's generation no longer matches and must not cancel the
  // new occupant.
  EventQueue q;
  EventLog log;
  const TimerHandle old_handle = q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.run_next();
  const TimerHandle new_handle = q.schedule(2.0, &log, 0, EventPayload{.i = 2});
  EXPECT_EQ(new_handle.slot, old_handle.slot);  // recycled
  EXPECT_NE(new_handle.gen, old_handle.gen);
  EXPECT_FALSE(q.cancel(old_handle));
  EXPECT_TRUE(q.pending(new_handle));
  q.run_next();
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{1, 2}));
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventQueue q;
  TimerHandle h;
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_FALSE(q.pending(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventLog log;
  const TimerHandle h = q.schedule(1.0, &log, 0);
  q.schedule(2.0, &log, 0);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

/// Target that re-schedules itself to build a chain of events.
struct ChainTarget final : TimerTarget {
  EventQueue* queue = nullptr;
  std::vector<double> times;

  void on_timer(const Event& event) override {
    times.push_back(event.time);
    if (times.size() < 5) queue->schedule(event.time + 1.0, this, 0);
  }
};

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  ChainTarget chain;
  chain.queue = &q;
  q.schedule(0.0, &chain, 0);
  while (q.run_next()) {
  }
  EXPECT_EQ(chain.times, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CountsAreTracked) {
  EventQueue q;
  EventLog log;
  const TimerHandle a = q.schedule(1.0, &log, 0);
  q.schedule(2.0, &log, 0);
  EXPECT_EQ(q.scheduled_count(), 2u);
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.run_next();
  EXPECT_EQ(q.executed_count(), 1u);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, SlotReuseUnderScheduleFireChurn) {
  // A self-rescheduling chain keeps exactly one event pending; the slot
  // table must not grow with the number of events executed.
  EventQueue q;
  ChainTarget chain;
  chain.queue = &q;
  q.schedule(0.0, &chain, 0);
  const std::size_t capacity_after_first = q.slot_capacity();
  while (q.run_next()) {
  }
  EXPECT_EQ(q.executed_count(), 5u);
  EXPECT_EQ(q.slot_capacity(), capacity_after_first);
  EXPECT_EQ(q.slot_capacity(), 1u);
}

TEST(EventQueue, SlotReuseUnderScheduleCancelChurn) {
  // Heavy schedule/cancel churn with a bounded number of live events: slot
  // storage stays O(pending), not O(scheduled ever). This is the memory
  // guarantee the old engine violated (its handler table grew per schedule
  // and cancelled closures were retained until run end).
  EventQueue q;
  EventLog log;
  constexpr int kLive = 8;
  std::vector<TimerHandle> live;
  for (int i = 0; i < kLive; ++i) {
    live.push_back(q.schedule(1e9 + i, &log, 0));
  }
  const std::size_t baseline_capacity = q.slot_capacity();
  for (int round = 0; round < 10000; ++round) {
    EXPECT_TRUE(q.cancel(live[static_cast<std::size_t>(round % kLive)]));
    live[static_cast<std::size_t>(round % kLive)] =
        q.schedule(1e9 + round, &log, 0);
    EXPECT_EQ(q.pending_count(), static_cast<std::size_t>(kLive));
  }
  EXPECT_EQ(q.slot_capacity(), baseline_capacity);
  EXPECT_EQ(q.scheduled_count(), static_cast<std::uint64_t>(kLive + 10000));
}

TEST(EventQueue, LargeRandomLoadIsSorted) {
  EventQueue q;
  EventLog log;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    q.schedule(rng.uniform(0.0, 1e6), &log, 0);
  }
  double last = -1.0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_GE(t, last);
    last = t;
    q.run_next();
  }
}

}  // namespace
}  // namespace gtrix
