// Experiment runner wiring: determinism, counters, trace mapping.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig config_for(std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = 8;
  config.layers = 8;
  config.pulses = 14;
  config.seed = seed;
  return config;
}

TEST(Runner, SameSeedIsBitReproducible) {
  const ExperimentResult a = run_experiment(config_for(123));
  const ExperimentResult b = run_experiment(config_for(123));
  EXPECT_DOUBLE_EQ(a.skew.max_intra, b.skew.max_intra);
  EXPECT_DOUBLE_EQ(a.skew.max_inter, b.skew.max_inter);
  EXPECT_DOUBLE_EQ(a.skew.global_skew, b.skew.global_skew);
  EXPECT_EQ(a.counters.events_executed, b.counters.events_executed);
  EXPECT_EQ(a.counters.messages_sent, b.counters.messages_sent);
}

TEST(Runner, DifferentSeedsDiffer) {
  const ExperimentResult a = run_experiment(config_for(1));
  const ExperimentResult b = run_experiment(config_for(2));
  EXPECT_NE(a.skew.max_intra, b.skew.max_intra);
}

TEST(Runner, TraceMapsGridIdsToRecorderIds) {
  World world(config_for(3));
  const GridTrace trace = world.trace();
  EXPECT_EQ(trace.node_ids.size(), world.grid().node_count());
  for (GridNodeId g = 0; g < world.grid().node_count(); ++g) {
    EXPECT_EQ(trace.rec_id(g), g);
    EXPECT_EQ(world.recorder().meta(g).layer, world.grid().layer_of(g));
    EXPECT_EQ(world.recorder().meta(g).base, world.grid().base_of(g));
  }
}

TEST(Runner, FaultMetadataRegistered) {
  ExperimentConfig config = config_for(4);
  config.faults = {{3, 4, FaultSpec::crash()}, {6, 2, FaultSpec::static_offset(10.0)}};
  World world(config);
  EXPECT_TRUE(world.is_faulty(world.grid().id(3, 4)));
  EXPECT_TRUE(world.is_faulty(world.grid().id(6, 2)));
  EXPECT_FALSE(world.is_faulty(world.grid().id(5, 5)));
  EXPECT_TRUE(world.recorder().meta(world.grid().id(3, 4)).faulty);
}

TEST(Runner, GradientNodesExposedCorrectNodesOnly) {
  ExperimentConfig config = config_for(5);
  config.faults = {{3, 4, FaultSpec::crash()}};
  World world(config);
  EXPECT_EQ(world.gradient_node(world.grid().id(3, 4)), nullptr);  // crashed
  EXPECT_EQ(world.gradient_node(world.grid().id(2, 0)), nullptr);  // layer 0
  EXPECT_NE(world.gradient_node(world.grid().id(2, 3)), nullptr);
}

TEST(Runner, CountersAreAggregated) {
  World world(config_for(6));
  world.run_to_completion();
  const ExperimentCounters counters = world.counters();
  EXPECT_GT(counters.iterations, 0u);
  EXPECT_GT(counters.events_executed, counters.iterations);
  EXPECT_GT(counters.messages_sent, 0u);
}

TEST(Runner, MessagesScaleWithGridSize) {
  ExperimentConfig small = config_for(7);
  ExperimentConfig big = config_for(7);
  big.columns = 16;
  big.layers = 16;
  World ws(small);
  ws.run_to_completion();
  World wb(big);
  wb.run_to_completion();
  EXPECT_GT(wb.counters().messages_sent, 3 * ws.counters().messages_sent);
}

TEST(Runner, InvalidConfigsRejected) {
  ExperimentConfig config = config_for(8);
  config.layers = 1;
  EXPECT_THROW(World{config}, std::logic_error);
  config = config_for(8);
  config.pulses = 0;
  EXPECT_THROW(World{config}, std::logic_error);
}

TEST(Runner, DelayModelsChangeOutcomes) {
  ExperimentConfig config = config_for(9);
  config.delay_kind = DelayModelKind::kAllMax;
  const ExperimentResult all_max = run_experiment(config);
  config.delay_kind = DelayModelKind::kUniformRandom;
  const ExperimentResult random = run_experiment(config);
  EXPECT_NE(all_max.skew.max_intra, random.skew.max_intra);
  // Identical delays mean the only noise sources are layer-0 jitter and
  // clock offsets: skew is very small.
  EXPECT_LT(all_max.skew.max_intra, random.skew.max_intra + 50.0);
}

TEST(Runner, JumpConditionFlagPropagates) {
  // With jump damping off and benign conditions, runs still complete.
  ExperimentConfig config = config_for(10);
  config.jump_condition = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.counters.iterations, 0u);
}

TEST(Runner, RogueFaultEmitsOwnPulses) {
  ExperimentConfig config = config_for(11);
  config.faults = {{4, 4, FaultSpec::fixed_period(1500.0)}};
  World world(config);
  world.run_to_completion();
  // The rogue recorded its own pulse train.
  EXPECT_NE(world.recorder().last_recorded(world.grid().id(4, 4)),
            Recorder::kInvalidSigma);
}

}  // namespace
}  // namespace gtrix
