
// Fixture: ambient entropy and wall-clock in engine code.
#include <chrono>
#include <cstdint>
#include <random>

namespace gtrix {

std::uint64_t ambient_seed() {
  std::random_device rd;  // environment entropy
  const auto now = std::chrono::system_clock::now();  // wall clock
  return rd() ^ static_cast<std::uint64_t>(now.time_since_epoch().count());
}

}  // namespace gtrix
