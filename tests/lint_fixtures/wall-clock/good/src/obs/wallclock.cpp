
// Fixture: src/obs is exempt -- wall-clock is telemetry's whole point.
#include <chrono>
#include <cstdint>

namespace gtrix::obs {

std::int64_t trace_epoch_micros() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace gtrix::obs
