
// Fixture: seeded streams for state, steady_clock for timing work.
#include <chrono>
#include <cstdint>

namespace gtrix {

std::uint64_t derived_seed(std::uint64_t config_seed, std::uint32_t stream) {
  return config_seed * 0x9E3779B97F4A7C15ull + stream;  // splitmix-style
}

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();  // monotonic: allowed
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace gtrix
