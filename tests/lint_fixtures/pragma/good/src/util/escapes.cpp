
// Fixture: a well-formed, justified, in-use allow pragma.

namespace gtrix {

char first_byte(const unsigned char* p) {
  // gtrix-lint: allow(reinterpret-cast) -- char-level read of live bytes is defined for any object type
  return *reinterpret_cast<const char*>(p);
}

}  // namespace gtrix
