
// Fixture: malformed, unknown-rule and stale allow pragmas.

namespace gtrix {

int f() {
  // gtrix-lint: allow(wall-clock)
  int no_reason = 0;
  // gtrix-lint: allow(no-such-rule) -- the rule id is wrong
  int unknown_rule = 0;
  // gtrix-lint: allow(wall-clock) -- suppresses nothing on this line
  int stale = 0;
  return no_reason + unknown_rule + stale;
}

}  // namespace gtrix
