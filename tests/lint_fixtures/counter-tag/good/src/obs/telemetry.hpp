
// Fixture: ObsCounter catalog tagging.
#pragma once

#include <cstdint>

namespace gtrix::obs {

enum class ObsCounter : std::uint32_t {
  kEventsExecuted = 0,
  kPeakRssBytes,
  kCount,
};

struct ObsCounterInfo {
  ObsCounter id;
  const char* name;
  bool engine_invariant;
  const char* summary;
};

}  // namespace gtrix::obs
