
#include "obs/telemetry.hpp"

namespace gtrix::obs {

constexpr ObsCounterInfo kCatalog[] = {
    {ObsCounter::kEventsExecuted, "events_executed", true, "events popped"},
    {ObsCounter::kPeakRssBytes, "peak_rss_bytes", false, "peak resident set"},
};

}  // namespace gtrix::obs
