
#include "obs/telemetry.hpp"

namespace gtrix::obs {

constexpr bool kDefaultTag = true;

constexpr ObsCounterInfo kCatalog[] = {
    {ObsCounter::kEventsExecuted, "events_executed", kDefaultTag, "not a literal"},
    {ObsCounter::kPeakRssBytes, "peak_rss_bytes", false, "peak resident set"},
};

}  // namespace gtrix::obs
