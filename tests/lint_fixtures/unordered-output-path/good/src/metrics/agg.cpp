
// Fixture: deterministic containers only in the output path.
#include <cstdint>
#include <map>
#include <vector>

namespace gtrix {

double sum_by_node(const std::map<std::uint32_t, double>& by_node) {
  double total = 0.0;
  for (const auto& [node, value] : by_node) total += value;  // id order
  return total;
}

double sum_dense(const std::vector<double>& by_node) {
  double total = 0.0;
  for (double v : by_node) total += v;
  return total;
}

}  // namespace gtrix
