
// Fixture: unordered container in an output path (src/metrics).
#include <cstdint>
#include <unordered_map>

namespace gtrix {

double sum_by_node(const std::unordered_map<std::uint32_t, double>& by_node) {
  double total = 0.0;
  for (const auto& [node, value] : by_node) total += value;  // order leaks
  return total;
}

}  // namespace gtrix
