
// Fixture: every EngineOptions field has a descs row and a docs mention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gtrix {

struct EngineOptions {
  bool fast_path = true;
  std::uint32_t shards = 1;
  bool secret_gate = true;  // no row, no docs
};

struct EngineGateDesc {
  std::string name;
  std::string fast_value;
  std::string reference_value;
  std::string summary;
};

std::vector<EngineGateDesc> engine_gate_descs();

}  // namespace gtrix
