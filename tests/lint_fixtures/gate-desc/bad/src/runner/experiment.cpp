
#include "runner/experiment.hpp"

namespace gtrix {

std::vector<EngineGateDesc> engine_gate_descs() {
  return {
      {"fast_path", "on", "off", "batched hot loop"},
      {"shards", "1", "1", "conservative-parallel sharding"},
      {"renamed_gate", "on", "off", "row matches no field"},
  };
}

}  // namespace gtrix
