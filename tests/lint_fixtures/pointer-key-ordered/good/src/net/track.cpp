
// Fixture: stable-id ordered keys; pointer keys only in lookup tables.
#include <cstdint>
#include <map>
#include <unordered_map>

namespace gtrix {

class TimerTarget;

class DeliveryTracker {
 public:
  void note(std::uint32_t id, TimerTarget* t) {
    ++order_[id];
    lookup_[t] = id;
  }

 private:
  std::map<std::uint32_t, int> order_;  // deterministic id order
  std::unordered_map<TimerTarget*, std::uint32_t> lookup_;  // never iterated
};

}  // namespace gtrix
