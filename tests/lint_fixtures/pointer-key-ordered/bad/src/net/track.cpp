
// Fixture: ordered container keyed on a pointer (address-order iteration).
#include <map>

namespace gtrix {

class TimerTarget;

class DeliveryTracker {
 public:
  void note(TimerTarget* t) { ++order_[t]; }

 private:
  std::map<TimerTarget*, int> order_;  // iteration order = address order
};

}  // namespace gtrix
