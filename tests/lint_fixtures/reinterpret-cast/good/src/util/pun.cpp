
// Fixture: std::bit_cast / std::memcpy for punning, no reinterpret_cast.
#include <bit>
#include <cstdint>
#include <cstring>

namespace gtrix {

double bits_to_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace gtrix
