
// Fixture: reinterpret_cast type punning (UB-adjacent, unannotated).
#include <cstdint>

namespace gtrix {

double bits_to_double(const std::uint64_t* bits) {
  return *reinterpret_cast<const double*>(bits);  // strict-aliasing violation
}

}  // namespace gtrix
