
// Fixture: codec guarded by GTRIX_CKPT_FIELDS, serialized parts included.
#include <cstdint>
#include <vector>

namespace gtrix {

class CkptWriter;

struct Part {
  std::uint32_t id = 0;
  double value = 0.0;
};

struct Wobble {
  std::uint32_t a = 0;
  std::vector<Part> parts;
  void checkpoint_save(CkptWriter& w) const;
};

void Wobble::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_FIELDS(Wobble, 2);
  GTRIX_CKPT_FIELDS(Part, 2);
  (void)w;
  for (const Part& p : parts) (void)p;
}

}  // namespace gtrix
