
// Fixture: codec without a field-count guard.
#include <cstdint>

namespace gtrix {

class CkptWriter;

struct Wobble {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  void checkpoint_save(CkptWriter& w) const;
};

void Wobble::checkpoint_save(CkptWriter& w) const {
  (void)w;  // would write a and b; nothing pins the field count
}

}  // namespace gtrix
