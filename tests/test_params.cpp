#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gtrix {
namespace {

TEST(Params, KappaMatchesEquationOne) {
  const Params p = Params::with(1000.0, 10.0, 1.0005);
  // kappa = 2 (u + (1 - 1/theta)(Lambda - d))
  const double expected = 2.0 * (10.0 + (1.0 - 1.0 / 1.0005) * 1000.0);
  EXPECT_DOUBLE_EQ(p.kappa(), expected);
}

TEST(Params, KappaGrowsWithUncertaintyAndDrift) {
  const Params base = Params::with(1000.0, 10.0, 1.0005);
  const Params more_u = Params::with(1000.0, 20.0, 1.0005);
  const Params more_theta = Params::with(1000.0, 10.0, 1.001);
  EXPECT_GT(more_u.kappa(), base.kappa());
  EXPECT_GT(more_theta.kappa(), base.kappa());
}

TEST(Params, WithSetsLambdaTwiceD) {
  const Params p = Params::with(500.0, 5.0, 1.001);
  EXPECT_DOUBLE_EQ(p.lambda, 1000.0);
}

TEST(Params, Thm11BoundFormula) {
  const Params p = Params::with(1000.0, 10.0, 1.0005);
  EXPECT_DOUBLE_EQ(p.thm11_bound(16), 4.0 * p.kappa() * (2.0 + 4.0));
  EXPECT_DOUBLE_EQ(p.psi1_bound(16), 2.0 * p.kappa() * 16.0);
  EXPECT_DOUBLE_EQ(p.global_skew_bound(16), 6.0 * p.kappa() * 16.0);
}

TEST(Params, Thm12BoundGrowsByFactorFive) {
  const Params p = Params::with(1000.0, 10.0, 1.0005);
  const double b0 = p.thm12_bound(16, 0);
  const double b1 = p.thm12_bound(16, 1);
  const double b2 = p.thm12_bound(16, 2);
  // B_{i+1} = 5 B_i + 4 kappa (2 + log D) ... ratio slightly above 5.
  EXPECT_NEAR(b1 / b0, 6.0, 1e-9);       // 5 * (1 + 1/5) / 1
  EXPECT_NEAR(b2 / b1, 31.0 / 6.0, 1e-9);
}

TEST(Params, ValidationAcceptsSaneDefaults) {
  const Params p = Params::with(1000.0, 10.0, 1.0005);
  EXPECT_TRUE(p.valid_for(16, 1.1)) << p.validate(16, 1.1);
}

TEST(Params, ValidationRejectsTightLambda) {
  Params p = Params::with(1000.0, 10.0, 1.0005);
  p.lambda = 1050.0;  // barely above d: violates Eq. (2)
  EXPECT_FALSE(p.valid_for(16, 1.0));
  EXPECT_NE(p.validate(16, 1.0).find("Eq(2)"), std::string::npos);
}

TEST(Params, ValidationRejectsSmallD) {
  // Huge uncertainty relative to d makes Eq. (3) fail.
  const Params p = Params::with(100.0, 50.0, 1.0005);
  EXPECT_FALSE(p.valid_for(16, 1.0));
}

TEST(Params, ValidationRejectsDegenerateInputs) {
  Params p = Params::with(1000.0, 10.0, 1.0005);
  p.theta = 1.0;
  EXPECT_FALSE(p.valid_for(4, 1.0));
  p = Params::with(1000.0, 10.0, 1.0005);
  p.u = -1.0;
  EXPECT_FALSE(p.valid_for(4, 1.0));
  p = Params::with(1000.0, 10.0, 1.0005);
  p.u = 2000.0;
  EXPECT_FALSE(p.valid_for(4, 1.0));
  p = Params::with(1000.0, 10.0, 1.0005);
  p.lambda = 900.0;
  EXPECT_FALSE(p.valid_for(4, 1.0));
}

TEST(Params, DeriveForProducesValidParams) {
  for (std::uint32_t diameter : {4u, 16u, 64u, 256u, 1024u}) {
    const Params p = Params::derive_for(diameter, 10.0, 1.0005, 1.2);
    EXPECT_TRUE(p.valid_for(diameter, 1.2))
        << "D=" << diameter << ": " << p.validate(diameter, 1.2);
    EXPECT_DOUBLE_EQ(p.lambda, 2.0 * p.d);
  }
}

TEST(Params, DeriveForScalesDWithDiameter) {
  const Params small = Params::derive_for(8, 10.0, 1.0005, 1.2);
  const Params large = Params::derive_for(512, 10.0, 1.0005, 1.2);
  EXPECT_GT(large.d, small.d);
}

TEST(Params, DescribeMentionsAllFields) {
  const std::string s = Params::with(1000.0, 10.0, 1.0005).describe();
  EXPECT_NE(s.find("d="), std::string::npos);
  EXPECT_NE(s.find("u="), std::string::npos);
  EXPECT_NE(s.find("theta="), std::string::npos);
  EXPECT_NE(s.find("Lambda="), std::string::npos);
  EXPECT_NE(s.find("kappa="), std::string::npos);
}

}  // namespace
}  // namespace gtrix
