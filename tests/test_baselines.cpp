// Baseline algorithms: naive TRIX [LW20] and HEX [DFL+16].
// The paper's comparison points (Fig. 1, Table 1):
//  * naive TRIX accumulates Theta(u D) local skew under adversarial delays,
//  * HEX suffers ~d of local skew near a preceding-layer crash,
//  * Gradient TRIX avoids both.
#include <gtest/gtest.h>

#include "baseline/hex.hpp"
#include "runner/experiment.hpp"

namespace gtrix {
namespace {

ExperimentConfig trix_config(std::uint32_t columns, std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns + 1;
  config.pulses = 16;
  config.seed = seed;
  config.algorithm = Algorithm::kTrixNaive;
  return config;
}

TEST(TrixNaive, RunsCleanlyWithRandomDelays) {
  const ExperimentResult result = run_experiment(trix_config(8, 1));
  EXPECT_GT(result.skew.pairs_checked, 0u);
  // Random symmetric delays: skew stays small (a few u).
  EXPECT_LT(result.skew.max_intra, 100.0);
}

TEST(TrixNaive, AccumulatesSkewUnderSplitDelays) {
  // Adversarial column-split delays (Fig. 1 left): local skew grows with
  // the layer index for naive TRIX.
  ExperimentConfig config = trix_config(12, 2);
  config.delay_kind = DelayModelKind::kColumnSplit;
  config.delay_split_column = 6;
  const ExperimentResult result = run_experiment(config);
  const auto& profile = result.skew.intra_by_layer;
  // Skew at the last layer is much larger than in early layers.
  EXPECT_GT(profile.back(), 3.0 * profile[2]);
  // And roughly linear in depth: ~u per layer at the split boundary.
  EXPECT_GT(profile.back(), 0.5 * config.params.u * (config.layers - 2));
}

TEST(TrixNaive, GradientTrixBeatsItUnderSplitDelays) {
  ExperimentConfig config = trix_config(12, 3);
  config.delay_kind = DelayModelKind::kColumnSplit;
  config.delay_split_column = 6;
  const ExperimentResult naive = run_experiment(config);
  config.algorithm = Algorithm::kGradientFull;
  const ExperimentResult gradient = run_experiment(config);
  EXPECT_LT(gradient.skew.intra_by_layer.back(), naive.skew.intra_by_layer.back());
}

TEST(TrixNaive, SurvivesACrashFault) {
  ExperimentConfig config = trix_config(8, 4);
  config.faults = {{4, 3, FaultSpec::crash()}};
  World world(config);
  world.run_to_completion();
  // Successors keep forwarding off the two remaining copies.
  const auto& grid = world.grid();
  const GridNodeId crashed = grid.id(4, 3);
  for (GridNodeId succ : grid.successors(crashed)) {
    EXPECT_GT(world.recorder().last_recorded(succ), 8) << grid.label(succ);
  }
}

TEST(Hex, RunsFaultFree) {
  HexConfig config;
  config.columns = 12;
  config.layers = 12;
  config.pulses = 12;
  config.seed = 1;
  const HexResult result = run_hex(config);
  EXPECT_GT(result.pulses_fired, 0u);
  // Fault-free interior skew: order u, far below d.
  EXPECT_LT(result.max_intra, config.d / 2.0);
}

TEST(Hex, CrashCostsRoughlyD) {
  HexConfig config;
  config.columns = 12;
  config.layers = 12;
  config.pulses = 12;
  config.seed = 2;
  config.crashes = {{6, 5}};
  const HexResult result = run_hex(config);
  // At/after the crash, a node waits for a same-layer copy: ~d extra skew
  // (paper Fig. 1 right).
  EXPECT_GT(result.max_intra, 0.5 * config.d);
  // Before the crash layer the skew stays small.
  EXPECT_LT(result.max_intra_away_from_faults, 0.25 * config.d);
}

TEST(Hex, FaultFreeSkewGrowsSlowly) {
  // HEX's fault-free bound d + O(u^2 D / d) is dominated by u-scale noise
  // at these sizes; verify no runaway growth with depth.
  HexConfig small;
  small.columns = 8;
  small.layers = 8;
  small.pulses = 10;
  small.seed = 3;
  HexConfig big = small;
  big.columns = 20;
  big.layers = 20;
  const HexResult a = run_hex(small);
  const HexResult b = run_hex(big);
  EXPECT_LT(b.max_intra, 6.0 * (a.max_intra + 1.0));
}

TEST(Hex, CrashOnLayerZeroTolerated) {
  HexConfig config;
  config.columns = 10;
  config.layers = 10;
  config.pulses = 10;
  config.seed = 4;
  config.crashes = {{4, 0}};
  const HexResult result = run_hex(config);
  EXPECT_GT(result.pulses_fired, 0u);
}

TEST(GradientVsHex, GradientAbsorbsCrashCheaper) {
  // The headline Table 1 comparison at test scale: a crash costs HEX ~d,
  // Gradient TRIX only O(kappa).
  HexConfig hex;
  hex.columns = 12;
  hex.layers = 12;
  hex.pulses = 12;
  hex.seed = 5;
  hex.crashes = {{6, 5}};
  const HexResult hex_result = run_hex(hex);

  ExperimentConfig config;
  config.columns = 12;
  config.layers = 12;
  config.pulses = 16;
  config.seed = 5;
  config.faults = {{6, 5, FaultSpec::crash()}};
  const ExperimentResult gradient = run_experiment(config);

  EXPECT_LT(gradient.skew.max_intra, hex_result.max_intra / 2.0);
}

}  // namespace
}  // namespace gtrix
