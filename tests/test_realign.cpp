// Unit tests for post-run wave-label realignment (metrics/realign.*).
#include <gtest/gtest.h>

#include "metrics/realign.hpp"

namespace gtrix {
namespace {

constexpr double kLambda = 2000.0;

/// Synthetic multi-layer trace: each node pulses at
/// (sigma + layer) * Lambda + noise, with optional per-node label shifts.
struct SyntheticWorld {
  Grid grid;
  Recorder recorder;
  GridTrace trace;

  SyntheticWorld(std::uint32_t columns, std::uint32_t layers, Sigma waves)
      : grid(BaseGraph::line_replicated(columns), layers) {
    for (GridNodeId g = 0; g < grid.node_count(); ++g) {
      NodeMeta meta;
      meta.layer = grid.layer_of(g);
      meta.base = grid.base_of(g);
      recorder.register_node(g, meta);
      for (Sigma s = 1; s <= waves; ++s) {
        const double t =
            (static_cast<double>(s) + grid.layer_of(g)) * kLambda + 3.0 * g / 100.0;
        recorder.record_pulse(g, s, t);
      }
    }
    trace.grid = &grid;
    trace.recorder = &recorder;
    for (GridNodeId g = 0; g < grid.node_count(); ++g) trace.node_ids.push_back(g);
    trace.node_warmup = 0;
    trace.node_tail = 0;
  }
};

TEST(Realign, CleanTraceUntouched) {
  SyntheticWorld world(6, 5, 10);
  const RealignStats stats = realign_wave_labels(world.recorder, world.trace, kLambda);
  EXPECT_EQ(stats.nodes_shifted, 0u);
  EXPECT_EQ(stats.max_abs_shift, 0);
}

TEST(Realign, SingleShiftedNodeCorrected) {
  SyntheticWorld world(6, 5, 10);
  const GridNodeId victim = world.grid.id(3, 2);
  // Mislabel by -1: its pulse at (s+layer)Lambda now carries label s-1.
  world.recorder.shift_node_sigma(victim, -1);
  ASSERT_FALSE(world.recorder.pulse_time(victim, 10).has_value());
  const RealignStats stats = realign_wave_labels(world.recorder, world.trace, kLambda);
  EXPECT_EQ(stats.nodes_shifted, 1u);
  EXPECT_EQ(stats.max_abs_shift, 1);
  // Labels restored: wave 10 exists again at the right time.
  const auto t = world.recorder.pulse_time(victim, 10);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, (10.0 + 2.0) * kLambda, 1.0);
}

TEST(Realign, MultiNodeMixedShifts) {
  SyntheticWorld world(8, 6, 12);
  world.recorder.shift_node_sigma(world.grid.id(2, 3), -1);
  world.recorder.shift_node_sigma(world.grid.id(5, 4), 2);
  world.recorder.shift_node_sigma(world.grid.id(6, 1), -2);
  const RealignStats stats = realign_wave_labels(world.recorder, world.trace, kLambda);
  EXPECT_EQ(stats.nodes_shifted, 3u);
  EXPECT_EQ(stats.max_abs_shift, 2);
  // Everything consistent again: same-sigma pulses across a layer align.
  for (Sigma s = 3; s <= 10; ++s) {
    for (std::uint32_t layer = 1; layer < 6; ++layer) {
      for (BaseNodeId v = 0; v < world.grid.base().node_count(); ++v) {
        const auto t = world.recorder.pulse_time(world.grid.id(v, layer), s);
        ASSERT_TRUE(t.has_value()) << "layer " << layer << " v " << v << " s " << s;
        // Synthetic per-node noise is 3g/100 <= ~2 time units.
        EXPECT_NEAR(*t, (static_cast<double>(s) + layer) * kLambda, 2.0);
      }
    }
  }
}

TEST(Realign, Layer0IsTheAnchor) {
  // Shift an entire upper layer: realignment must move it back toward the
  // layer-0 reference rather than leaving the majority alone.
  SyntheticWorld world(6, 4, 10);
  for (BaseNodeId v = 0; v < world.grid.base().node_count(); ++v) {
    world.recorder.shift_node_sigma(world.grid.id(v, 3), -1);
  }
  const RealignStats stats = realign_wave_labels(world.recorder, world.trace, kLambda);
  EXPECT_EQ(stats.nodes_shifted, world.grid.base().node_count());
  const auto t = world.recorder.pulse_time(world.grid.id(0, 3), 9);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, (9.0 + 3.0) * kLambda, 1.0);
}

TEST(Realign, NodesWithFewPulsesSkipped) {
  SyntheticWorld world(6, 4, 10);
  // A node with only 2 pulses cannot be realigned reliably; it is skipped.
  Recorder& rec = world.recorder;
  const GridNodeId sparse = world.grid.id(1, 2);
  // Rebuild that node's log with only two entries, shifted.
  NodeMeta meta = rec.meta(sparse);
  Recorder fresh;
  (void)meta;
  // Simpler: shift it and verify realign does not crash and reports a
  // shift for it (it has 10 pulses) -- then truncate indirectly by testing
  // a genuinely sparse synthetic recorder:
  Recorder sparse_rec;
  Grid small(BaseGraph::line_replicated(4), 2);
  GridTrace trace;
  trace.grid = &small;
  trace.recorder = &sparse_rec;
  for (GridNodeId g = 0; g < small.node_count(); ++g) {
    sparse_rec.register_node(g, {});
    trace.node_ids.push_back(g);
  }
  trace.node_warmup = 0;
  trace.node_tail = 0;
  // Layer 0 has 3 pulses; the layer-1 node only 2 (insufficient).
  for (BaseNodeId v = 0; v < small.base().node_count(); ++v) {
    for (Sigma s = 1; s <= 3; ++s) {
      sparse_rec.record_pulse(small.id(v, 0), s, static_cast<double>(s) * kLambda);
    }
    sparse_rec.record_pulse(small.id(v, 1), 1, 1.0 * kLambda + kLambda);
    sparse_rec.record_pulse(small.id(v, 1), 2, 2.0 * kLambda + kLambda);
  }
  const RealignStats stats = realign_wave_labels(sparse_rec, trace, kLambda);
  EXPECT_EQ(stats.nodes_shifted, 0u);
}

TEST(Realign, ShiftNodeSigmaMovesIterations) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 4, 100.0);
  IterationRecord it;
  it.sigma = 4;
  rec.record_iteration(0, it);
  rec.shift_node_sigma(0, 3);
  EXPECT_TRUE(rec.pulse_time(0, 7).has_value());
  EXPECT_FALSE(rec.pulse_time(0, 4).has_value());
  EXPECT_EQ(rec.iterations(0)[0].sigma, 7);
}

TEST(Realign, ZeroShiftIsNoOp) {
  Recorder rec;
  rec.register_node(0, {});
  rec.record_pulse(0, 4, 100.0);
  rec.shift_node_sigma(0, 0);
  EXPECT_TRUE(rec.pulse_time(0, 4).has_value());
}

}  // namespace
}  // namespace gtrix
