#include "support/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gtrix {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = make({"--columns=32", "--rate=1.5"});
  EXPECT_EQ(f.get_int("columns", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 1.5);
}

TEST(Flags, SpaceSeparatedForm) {
  const Flags f = make({"--columns", "32"});
  EXPECT_EQ(f.get_int("columns", 0), 32);
}

TEST(Flags, BareBooleanIsTrue) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, NoPrefixDisables) {
  const Flags f = make({"--no-verbose"});
  EXPECT_FALSE(f.get_bool("verbose", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
}

TEST(Flags, InvalidBooleanThrows) {
  const Flags f = make({"--x=maybe"});
  EXPECT_THROW((void)f.get_bool("x", false), std::invalid_argument);
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get_string("missing", "abc"), "abc");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(f.get_bool("missing", true));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = make({"input.txt", "--k=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, ProgramName) {
  const Flags f = make({});
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, U64RoundTrip) {
  const Flags f = make({"--seed=18446744073709551615"});
  EXPECT_EQ(f.get_u64("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = make({"--offset=-42"});
  EXPECT_EQ(f.get_int("offset", 0), -42);
}

TEST(Flags, LastValueWins) {
  const Flags f = make({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

}  // namespace
}  // namespace gtrix
