#include "support/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gtrix {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = make({"--columns=32", "--rate=1.5"});
  EXPECT_EQ(f.get_int("columns", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 1.5);
}

TEST(Flags, SpaceSeparatedForm) {
  const Flags f = make({"--columns", "32"});
  EXPECT_EQ(f.get_int("columns", 0), 32);
}

TEST(Flags, BareBooleanIsTrue) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, NoPrefixDisables) {
  const Flags f = make({"--no-verbose"});
  EXPECT_FALSE(f.get_bool("verbose", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
}

TEST(Flags, InvalidBooleanThrows) {
  const Flags f = make({"--x=maybe"});
  EXPECT_THROW((void)f.get_bool("x", false), std::invalid_argument);
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get_string("missing", "abc"), "abc");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(f.get_bool("missing", true));
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = make({"input.txt", "--k=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, ProgramName) {
  const Flags f = make({});
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, NumericValuesMustConsumeWholeToken) {
  EXPECT_THROW((void)make({"--threads=4x"}).get_int("threads", 0), std::invalid_argument);
  EXPECT_THROW((void)make({"--seed=1O0"}).get_u64("seed", 0), std::invalid_argument);
  EXPECT_THROW((void)make({"--rate=1.5z"}).get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)make({"--k="}).get_int("k", 0), std::invalid_argument);
  try {
    (void)make({"--threads=4x"}).get_int("threads", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
  }
}

TEST(Flags, U64RoundTrip) {
  const Flags f = make({"--seed=18446744073709551615"});
  EXPECT_EQ(f.get_u64("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = make({"--offset=-42"});
  EXPECT_EQ(f.get_int("offset", 0), -42);
}

TEST(Flags, DuplicateFlagThrows) {
  EXPECT_THROW(make({"--k=1", "--k=2"}), std::invalid_argument);
  EXPECT_THROW(make({"--verbose", "--verbose"}), std::invalid_argument);
  // --no-foo and --foo target the same flag.
  EXPECT_THROW(make({"--verbose", "--no-verbose"}), std::invalid_argument);
}

TEST(Flags, DuplicateMessageNamesFlag) {
  try {
    make({"--seed=1", "--seed=2"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seed"), std::string::npos);
  }
}

TEST(Flags, EndOfFlagsSeparator) {
  const Flags f = make({"--k=1", "--", "--not-a-flag", "plain", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 1);
  ASSERT_EQ(f.positional().size(), 3u);
  EXPECT_EQ(f.positional()[0], "--not-a-flag");
  EXPECT_EQ(f.positional()[1], "plain");
  EXPECT_EQ(f.positional()[2], "--k=2");
}

TEST(Flags, DeclaredBooleanFlagDoesNotConsumeValue) {
  std::vector<const char*> args = {"prog", "--dry-run", "in.json", "--threads", "3"};
  const Flags f(static_cast<int>(args.size()), args.data(), {"dry-run"});
  EXPECT_TRUE(f.get_bool("dry-run", false));
  EXPECT_EQ(f.get_int("threads", 0), 3);  // undeclared flags still bind values
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "in.json");
}

TEST(Flags, SeparatorStopsValueConsumption) {
  // "--name --" must not consume "--" as the value.
  const Flags f = make({"--verbose", "--", "file.json"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "file.json");
}

TEST(Flags, NamesListsAllPassedFlags) {
  const Flags f = make({"--b=1", "--a", "--no-c"});
  const std::vector<std::string> names = f.names();
  ASSERT_EQ(names.size(), 3u);  // sorted map order
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(Usage, FlagNamesStripDashesAndValues) {
  Usage usage("prog", "x");
  usage.flag("--threads=N", "a").flag("--dry-run", "b");
  const std::vector<std::string> names = usage.flag_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "threads");
  EXPECT_EQ(names[1], "dry-run");
}

TEST(Usage, RendersAlignedSections) {
  Usage usage("prog", "Does things.");
  usage.positional("FILE", "input file");
  usage.flag("--threads=N", "worker threads");
  usage.flag("--out=DIR", "output directory");
  const std::string text = usage.str();
  EXPECT_NE(text.find("usage: prog [flags] [FILE...]"), std::string::npos);
  EXPECT_NE(text.find("Does things."), std::string::npos);
  EXPECT_NE(text.find("--threads=N"), std::string::npos);
  EXPECT_NE(text.find("worker threads"), std::string::npos);
  EXPECT_NE(text.find("--out=DIR"), std::string::npos);
  // Help columns align: both helps start at the same offset.
  const auto col = [&](const char* needle) {
    const auto line_start = text.rfind('\n', text.find(needle));
    return text.find(needle) - line_start;
  };
  EXPECT_EQ(col("worker threads"), col("output directory"));
}

}  // namespace
}  // namespace gtrix
